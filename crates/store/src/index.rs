//! A persistent interval index: a paged, bulk-loaded B+tree over the
//! valid-time **start** of every record, augmented with the **maximum
//! valid-time end** of each subtree — the classic augmented interval tree,
//! laid out on the same 4 KiB pages as the heaps and served through the
//! same [`BufferPool`].
//!
//! One leaf entry per heap record: `(ts, te, heap_page)`. Leaves are
//! written in `ts` order by the bulk load, internal nodes fan out over
//! them carrying `(first_ts_of_child, max_te_of_subtree, child)`. A
//! timeslice/overlap probe `ts <= B ∧ te > A` then descends only into
//! subtrees whose key range starts at or below `B` **and** whose
//! `max_te` exceeds `A` — the augmentation is what prunes long-dead
//! subtrees that a plain B+tree on `ts` would still walk.
//!
//! Appends after the bulk load go to an unsorted **overflow chain**
//! (linked leaf pages scanned linearly by every probe), so maintenance is
//! O(1) per row; the next `persist` rebuild folds the overflow back into
//! the sorted tree. The probe's answer is the *set of heap pages* that
//! may hold matching records — the scan still decodes and re-filters
//! them, so a false positive costs time, never correctness.
//!
//! ```text
//! page 0: meta  (root, levels, entry counts, overflow head/tail)
//! page k: node  [magic | kind | count | next | entry₀ … entryₙ]
//!                leaf entry:     ts i64, te i64, heap_page u32
//!                internal entry: first_ts i64, max_te i64, child u32
//! ```

use std::path::Path;
use std::sync::Mutex;

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::{StoreError, StoreResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// One index entry: the record's interval and the heap page holding it.
pub type IndexEntry = (i64, i64, PageId);

const MAGIC: u32 = 0x5449_4458; // "TIDX"
const NIL: u32 = u32::MAX;

const KIND_META: u8 = 0;
const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;

// Node header: magic u32 | kind u8 | pad u8 | count u16 | next u32 | pad.
const N_KIND: usize = 4;
const N_COUNT: usize = 6;
const N_NEXT: usize = 8;
const NODE_HDR: usize = 16;
/// Entries per node (leaf and internal entries are both 20 bytes).
const ENTRY_SIZE: usize = 20;
const NODE_CAP: usize = (PAGE_SIZE - NODE_HDR) / ENTRY_SIZE;

// Meta page layout (page 0).
const M_LEVELS: usize = 6;
const M_ROOT: usize = 8;
const M_OVER_HEAD: usize = 12;
const M_OVER_TAIL: usize = 16;
const M_ENTRIES: usize = 20;
const M_OVER_ENTRIES: usize = 28;

fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(b[off..off + 2].try_into().expect("2 bytes"))
}

fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

fn get_i64(b: &[u8], off: usize) -> i64 {
    get_u64(b, off) as i64
}

fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut [u8], off: usize, v: u64) {
    b[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn put_i64(b: &mut [u8], off: usize, v: i64) {
    put_u64(b, off, v as u64);
}

/// Serialize one node page. Both node kinds share the 20-byte entry shape
/// `(i64, i64, u32)`, so this covers leaves and internals alike.
fn node_page(kind: u8, entries: &[IndexEntry], next: u32) -> Page {
    debug_assert!(entries.len() <= NODE_CAP);
    let mut page = Page::zeroed();
    let b = page.as_bytes_mut();
    put_u32(b, 0, MAGIC);
    b[N_KIND] = kind;
    put_u16(b, N_COUNT, entries.len() as u16);
    put_u32(b, N_NEXT, next);
    for (i, &(a, c, p)) in entries.iter().enumerate() {
        let off = NODE_HDR + i * ENTRY_SIZE;
        put_i64(b, off, a);
        put_i64(b, off + 8, c);
        put_u32(b, off + 16, p);
    }
    page
}

/// Deserialize a node's entries (and its chain pointer).
fn read_node(page: &Page, expect_kind: Option<u8>) -> StoreResult<(u8, Vec<IndexEntry>, u32)> {
    let b = page.as_bytes();
    if get_u32(b, 0) != MAGIC {
        return Err(StoreError::Corrupt("bad interval-index node magic".into()));
    }
    let kind = b[N_KIND];
    if expect_kind.is_some_and(|k| k != kind) {
        return Err(StoreError::Corrupt(format!(
            "interval-index node kind {kind} where {expect_kind:?} was expected"
        )));
    }
    let count = get_u16(b, N_COUNT) as usize;
    if count > NODE_CAP {
        return Err(StoreError::Corrupt(format!(
            "interval-index node claims {count} entries (capacity {NODE_CAP})"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let off = NODE_HDR + i * ENTRY_SIZE;
        entries.push((get_i64(b, off), get_i64(b, off + 8), get_u32(b, off + 16)));
    }
    Ok((kind, entries, get_u32(b, N_NEXT)))
}

/// The index file behind a buffer pool. All probes go through the pool
/// (pinned, counted in `io_reads`), appends serialize on `append_lock`.
#[derive(Debug)]
pub struct IntervalIndex {
    pool: BufferPool,
    append_lock: Mutex<()>,
}

impl IntervalIndex {
    /// Bulk-load a fresh index at `path` (truncating any previous file)
    /// from the full entry set. Entries are sorted by `(ts, te, page)`
    /// and packed into leaves; internal levels are built bottom-up.
    pub fn build(
        path: impl AsRef<Path>,
        pool_pages: usize,
        mut entries: Vec<IndexEntry>,
    ) -> StoreResult<IntervalIndex> {
        let path = path.as_ref();
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let disk = DiskManager::open(path)?;
        let total = entries.len() as u64;
        entries.sort_unstable();

        // Page 0 is the meta page; reserve it first so node ids start at 1.
        disk.allocate_page(&node_page(KIND_META, &[], NIL))?;

        // Leaves in ts order, each summarized as (first_ts, max_te, id).
        let mut level: Vec<IndexEntry> = Vec::new();
        for chunk in entries.chunks(NODE_CAP) {
            let id = disk.allocate_page(&node_page(KIND_LEAF, chunk, NIL))?;
            let max_te = chunk.iter().map(|e| e.1).max().expect("non-empty chunk");
            level.push((chunk[0].0, max_te, id));
        }
        let mut levels = u16::from(!level.is_empty());
        while level.len() > 1 {
            let mut next = Vec::new();
            for chunk in level.chunks(NODE_CAP) {
                let id = disk.allocate_page(&node_page(KIND_INTERNAL, chunk, NIL))?;
                let max_te = chunk.iter().map(|e| e.1).max().expect("non-empty chunk");
                next.push((chunk[0].0, max_te, id));
            }
            level = next;
            levels += 1;
        }
        let root = level.first().map_or(NIL, |&(_, _, id)| id);

        let mut meta = node_page(KIND_META, &[], NIL);
        {
            let b = meta.as_bytes_mut();
            put_u16(b, M_LEVELS, levels);
            put_u32(b, M_ROOT, root);
            put_u32(b, M_OVER_HEAD, NIL);
            put_u32(b, M_OVER_TAIL, NIL);
            put_u64(b, M_ENTRIES, total);
            put_u64(b, M_OVER_ENTRIES, 0);
        }
        disk.write_page(0, &meta)?;
        disk.sync()?;
        Ok(IntervalIndex {
            pool: BufferPool::new(disk, pool_pages),
            append_lock: Mutex::new(()),
        })
    }

    /// Open an existing index file, validating the meta page.
    pub fn open(path: impl AsRef<Path>, pool_pages: usize) -> StoreResult<IntervalIndex> {
        let disk = DiskManager::open(path.as_ref())?;
        if disk.page_count() == 0 {
            return Err(StoreError::Corrupt(format!(
                "interval index {} is empty (no meta page)",
                path.as_ref().display()
            )));
        }
        let pool = BufferPool::new(disk, pool_pages);
        {
            let guard = pool.fetch(0)?;
            read_node(&guard.read(), Some(KIND_META))?;
        }
        Ok(IntervalIndex {
            pool,
            append_lock: Mutex::new(()),
        })
    }

    /// The index file path (for manifest bookkeeping).
    pub fn path(&self) -> &Path {
        self.pool.disk().path()
    }

    /// The buffer pool (io accounting).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Pages in the index file (meta + nodes).
    pub fn page_count(&self) -> u32 {
        self.pool.disk().page_count()
    }

    fn meta(&self) -> StoreResult<(u16, u32, u32, u64, u64)> {
        let guard = self.pool.fetch(0)?;
        let page = guard.read();
        read_node(&page, Some(KIND_META))?;
        let b = page.as_bytes();
        Ok((
            get_u16(b, M_LEVELS),
            get_u32(b, M_ROOT),
            get_u32(b, M_OVER_HEAD),
            get_u64(b, M_ENTRIES),
            get_u64(b, M_OVER_ENTRIES),
        ))
    }

    /// Total entries (sorted tree + overflow chain).
    pub fn entry_count(&self) -> StoreResult<u64> {
        let (_, _, _, entries, overflow) = self.meta()?;
        Ok(entries + overflow)
    }

    /// Tree height in levels (0 = empty, 1 = a single leaf level).
    pub fn levels(&self) -> StoreResult<u16> {
        Ok(self.meta()?.0)
    }

    /// Entries sitting in the unsorted overflow chain (folded back into
    /// the sorted tree by the next bulk rebuild).
    pub fn overflow_entries(&self) -> StoreResult<u64> {
        Ok(self.meta()?.4)
    }

    /// Append entries for freshly-inserted rows to the overflow chain.
    pub fn append(&self, entries: &[IndexEntry]) -> StoreResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let _lock = self.append_lock.lock().unwrap_or_else(|e| e.into_inner());
        let (_, _, _, _, mut over_count) = self.meta()?;
        let mut tail = {
            let guard = self.pool.fetch(0)?;
            let b = guard.read();
            get_u32(b.as_bytes(), M_OVER_TAIL)
        };
        let mut remaining = entries;
        while !remaining.is_empty() {
            // Top up the current tail node, if any and not full.
            if tail != NIL {
                let guard = self.pool.fetch(tail)?;
                let mut page = guard.write();
                let b = page.as_bytes_mut();
                let count = get_u16(b, N_COUNT) as usize;
                let room = NODE_CAP - count;
                let take = room.min(remaining.len());
                for (i, &(a, c, p)) in remaining[..take].iter().enumerate() {
                    let off = NODE_HDR + (count + i) * ENTRY_SIZE;
                    put_i64(b, off, a);
                    put_i64(b, off + 8, c);
                    put_u32(b, off + 16, p);
                }
                put_u16(b, N_COUNT, (count + take) as u16);
                drop(page);
                over_count += take as u64;
                remaining = &remaining[take..];
                if remaining.is_empty() {
                    break;
                }
            }
            // Chain a fresh overflow node.
            let take = remaining.len().min(NODE_CAP);
            let (new_id, _guard) =
                self.pool
                    .allocate(node_page(KIND_LEAF, &remaining[..take], NIL))?;
            over_count += take as u64;
            remaining = &remaining[take..];
            let guard = self.pool.fetch(0)?;
            let mut meta = guard.write();
            let b = meta.as_bytes_mut();
            if get_u32(b, M_OVER_HEAD) == NIL {
                put_u32(b, M_OVER_HEAD, new_id);
            }
            put_u32(b, M_OVER_TAIL, new_id);
            drop(meta);
            if tail != NIL {
                let guard = self.pool.fetch(tail)?;
                put_u32(guard.write().as_bytes_mut(), N_NEXT, new_id);
            }
            tail = new_id;
        }
        let guard = self.pool.fetch(0)?;
        put_u64(guard.write().as_bytes_mut(), M_OVER_ENTRIES, over_count);
        Ok(())
    }

    /// The set of heap pages that may hold a record with `ts <= ts_le`
    /// and `te > te_gt` (an `AS OF v` probe passes `Some(v)` for both; a
    /// `None` side is unbounded), sorted ascending and deduplicated.
    /// Subtrees whose smallest `ts` exceeds `ts_le` or whose `max_te` is
    /// at most `te_gt` are skipped — the interval-tree augmentation at
    /// work.
    pub fn probe(&self, ts_le: Option<i64>, te_gt: Option<i64>) -> StoreResult<Vec<PageId>> {
        let ts_ok = |ts: i64| ts_le.is_none_or(|b| ts <= b);
        let te_ok = |te: i64| te_gt.is_none_or(|b| te > b);
        let (_, root, over_head, _, _) = self.meta()?;
        let mut hits = std::collections::BTreeSet::new();
        let mut stack = Vec::new();
        if root != NIL {
            stack.push(root);
        }
        while let Some(id) = stack.pop() {
            // Copy the node out before descending: the walk never holds
            // more than one pin, so a tiny pool cannot deadlock.
            let (kind, node_entries, _) = {
                let guard = self.pool.fetch(id)?;
                let node = read_node(&guard.read(), None)?;
                node
            };
            match kind {
                KIND_LEAF => {
                    for &(ts, te, page) in &node_entries {
                        if !ts_ok(ts) {
                            break; // leaf entries are ts-sorted
                        }
                        if te_ok(te) {
                            hits.insert(page);
                        }
                    }
                }
                KIND_INTERNAL => {
                    for &(first_ts, max_te, child) in &node_entries {
                        if !ts_ok(first_ts) {
                            break; // children are ts-sorted too
                        }
                        if te_ok(max_te) {
                            stack.push(child);
                        }
                    }
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "interval-index walk hit node kind {other}"
                    )))
                }
            }
        }
        // Overflow chain: unsorted, scanned linearly.
        let mut next = over_head;
        while next != NIL {
            let (_, node_entries, chained) = {
                let guard = self.pool.fetch(next)?;
                let node = read_node(&guard.read(), Some(KIND_LEAF))?;
                node
            };
            for &(ts, te, page) in &node_entries {
                if ts_ok(ts) && te_ok(te) {
                    hits.insert(page);
                }
            }
            next = chained;
        }
        Ok(hits.into_iter().collect())
    }

    /// Write back dirty pages and sync the file.
    pub fn flush(&self) -> StoreResult<()> {
        self.pool.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn idx_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("talign_store_index_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Brute-force oracle over raw entries.
    fn oracle(entries: &[IndexEntry], ts_le: i64, te_gt: i64) -> Vec<PageId> {
        let mut hits: Vec<PageId> = entries
            .iter()
            .filter(|&&(ts, te, _)| ts <= ts_le && te > te_gt)
            .map(|&(_, _, p)| p)
            .collect();
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    #[test]
    fn bulk_load_probe_matches_oracle() {
        let path = idx_path("bulk.tidx");
        // Enough entries for a two-level tree (NODE_CAP = 204).
        let entries: Vec<IndexEntry> = (0..2000i64)
            .map(|i| {
                let ts = (i * 37) % 500;
                (ts, ts + 1 + (i % 40), (i / 10) as PageId)
            })
            .collect();
        let idx = IntervalIndex::build(&path, 8, entries.clone()).unwrap();
        assert_eq!(idx.entry_count().unwrap(), 2000);
        assert!(idx.levels().unwrap() >= 2);
        for v in [-1i64, 0, 13, 250, 499, 540, 1000] {
            assert_eq!(
                idx.probe(Some(v), Some(v)).unwrap(),
                oracle(&entries, v, v),
                "AS OF {v}"
            );
        }
        // Overlap-style probe with distinct bounds.
        assert_eq!(
            idx.probe(Some(400), Some(100)).unwrap(),
            oracle(&entries, 400, 100)
        );
        // Unbounded sides return everything on that side — no sentinel values.
        assert_eq!(
            idx.probe(None, None).unwrap(),
            oracle(&entries, i64::MAX, i64::MIN)
        );
        assert_eq!(
            idx.probe(None, Some(100)).unwrap(),
            oracle(&entries, i64::MAX, 100)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_and_overflow_appends() {
        let path = idx_path("overflow.tidx");
        let mut entries: Vec<IndexEntry> =
            (0..300i64).map(|i| (i, i + 5, (i / 7) as PageId)).collect();
        let idx = IntervalIndex::build(&path, 4, entries.clone()).unwrap();
        idx.flush().unwrap();
        drop(idx);

        let idx = IntervalIndex::open(&path, 4).unwrap();
        // Appends land in the overflow chain and are visible to probes.
        let fresh: Vec<IndexEntry> = (0..450i64)
            .map(|i| (1000 + i, 1002 + i, (100 + i / 7) as PageId))
            .collect();
        idx.append(&fresh).unwrap();
        entries.extend_from_slice(&fresh);
        assert_eq!(idx.entry_count().unwrap(), 750);
        assert_eq!(idx.overflow_entries().unwrap(), 450);
        for v in [2i64, 150, 299, 1001, 1200, 1448] {
            assert_eq!(
                idx.probe(Some(v), Some(v)).unwrap(),
                oracle(&entries, v, v),
                "AS OF {v}"
            );
        }
        idx.flush().unwrap();
        drop(idx);
        // The overflow chain survives reopen.
        let idx = IntervalIndex::open(&path, 4).unwrap();
        assert_eq!(idx.entry_count().unwrap(), 750);
        assert_eq!(
            idx.probe(Some(1200), Some(1200)).unwrap(),
            oracle(&entries, 1200, 1200)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_index_probes_empty() {
        let path = idx_path("empty.tidx");
        let idx = IntervalIndex::build(&path, 2, Vec::new()).unwrap();
        assert_eq!(idx.entry_count().unwrap(), 0);
        assert_eq!(idx.levels().unwrap(), 0);
        assert!(idx.probe(Some(0), Some(0)).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_non_index_files() {
        let path = idx_path("garbage.tidx");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(IntervalIndex::open(&path, 2).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
