//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a source-compatible shim covering exactly the API subset the other crates
//! use: `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float ranges. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given seed,
//! which is all the datasets and tests require. The stream differs from the
//! real `StdRng` (ChaCha12), so seeds produce different (but still fixed)
//! data than upstream `rand` would.
//!
//! To use the real crate instead, point the `rand` entry in the root
//! `[workspace.dependencies]` at a registry version.

/// A random number generator core: the single method every distribution
/// in this shim is derived from.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Sampling interface, mirroring `rand::Rng` — blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a `bool` with probability `p` of being `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
///
/// Like the real crate, the only impls are `Range<T>` / `RangeInclusive<T>`
/// for `T: SampleUniform` — a single generic impl per range shape, so that
/// integer-literal ranges unify with the type demanded by the call site.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: PartialOrd + Sized {
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

#[inline]
fn sample_unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style unbiased bounded sampling over `[0, span)`.
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let wide = (rng.next_u64() as u128).wrapping_mul(span as u128);
        let lo = wide as u64;
        if lo >= span || lo >= (span.wrapping_neg() % span) {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + sample_below(rng, span) as i128) as $ty
            }

            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + sample_below(rng, span + 1) as i128) as $ty
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = sample_unit_f64(rng.next_u64()) as $ty;
                lo + u * (hi - lo)
            }

            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Close enough for a shim: the hi endpoint has measure zero.
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, standing in for the real
    /// crate's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut state);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17i64);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(3..=3i64);
            assert_eq!(y, 3);
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_full_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
