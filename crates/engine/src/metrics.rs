//! A unified, dependency-free metrics registry.
//!
//! Before this module, runtime counters were scattered across the
//! workspace: per-query [`crate::exec::ExecStats`] in the engine, buffer
//! pool / disk manager I/O counters in the store, WAL commit/sync
//! watermarks on the database front door, pruning ledgers inside scans.
//! Each had its own ad-hoc accessor and none composed. The registry gives
//! every layer one vocabulary — named [`Counter`]s, [`Gauge`]s and
//! fixed-bucket latency [`Histogram`]s — behind a snapshot/diff API, so a
//! caller can bracket any region of work with two snapshots and read off
//! exactly what happened in between.
//!
//! Everything here is `std` atomics: recording a counter is one relaxed
//! `fetch_add`, recording a histogram sample is a short branchless scan
//! over at most [`LATENCY_BUCKET_BOUNDS`]`.len()` bounds plus two
//! `fetch_add`s. There are no locks on the hot path — the registry's maps
//! are locked only to *look up or create* an instrument, and callers are
//! expected to cache the returned `Arc` (the store, engine and server all
//! register their instruments once at startup).
//!
//! Naming convention: `component.metric` with dots as separators —
//! `pool.io_reads`, `wal.syncs`, `exec.rows_emitted`,
//! `server.statements`. Snapshots render in `BTreeMap` order, so related
//! metrics group together in every dump.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (pool size, active sessions).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in microseconds: 50µs … 10s in a
/// roughly 1-2.5-5 progression. A final implicit overflow bucket catches
/// everything above the last bound.
pub const LATENCY_BUCKET_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket histogram. Values are unitless `u64`s; by convention
/// latency histograms record **microseconds** against
/// [`LATENCY_BUCKET_BOUNDS`]. Bucket semantics are `value <= bound`: a
/// sample lands in the first bucket whose upper bound is ≥ the sample,
/// and samples above every bound land in the implicit overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    /// Sorted, strictly increasing upper bounds; `buckets.len() ==
    /// bounds.len() + 1` (the extra slot is the overflow bucket).
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Largest sample seen — reported for percentiles that land in the
    /// unbounded overflow bucket.
    max: AtomicU64,
}

impl Histogram {
    /// Histogram over the given upper bounds (must be sorted ascending).
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds not sorted");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The default latency histogram (microsecond samples).
    pub fn latency() -> Histogram {
        Histogram::new(LATENCY_BUCKET_BOUNDS)
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot the per-bucket counts (`bounds.len() + 1` entries, last is
    /// the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The `p`-th percentile (0 < p ≤ 100), resolved to the upper bound of
    /// the bucket holding the `ceil(p% · count)`-th sample — an upper
    /// bound on the true percentile, which is exactly the conservative
    /// direction for a latency SLO. Percentiles landing in the overflow
    /// bucket report the largest sample seen. `None` while empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let snap = self.bucket_counts();
        let total: u64 = snap.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in snap.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match self.bounds.get(i) {
                    Some(&bound) => bound.min(self.max.load(Ordering::Relaxed)),
                    None => self.max.load(Ordering::Relaxed),
                });
            }
        }
        Some(self.max.load(Ordering::Relaxed))
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.bucket_counts(),
            count: self.count(),
            sum: self.sum(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub p50: Option<u64>,
    pub p95: Option<u64>,
    pub p99: Option<u64>,
}

/// Point-in-time copy of a whole registry, renderable and diffable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The delta from `earlier` to `self`: counters subtract (saturating,
    /// so a registry reset never underflows), gauges keep their current
    /// value (an instantaneous reading has no meaningful delta), and
    /// histograms subtract bucket-wise with percentiles recomputed over
    /// the interval's samples only.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let delta = match earlier.histograms.get(k) {
                    Some(e) if e.bounds == h.bounds => {
                        let buckets: Vec<u64> = h
                            .buckets
                            .iter()
                            .zip(&e.buckets)
                            .map(|(&a, &b)| a.saturating_sub(b))
                            .collect();
                        let count = h.count.saturating_sub(e.count);
                        let sum = h.sum.saturating_sub(e.sum);
                        let (p50, p95, p99) = (
                            percentile_of(&h.bounds, &buckets, 50.0),
                            percentile_of(&h.bounds, &buckets, 95.0),
                            percentile_of(&h.bounds, &buckets, 99.0),
                        );
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            buckets,
                            count,
                            sum,
                            p50,
                            p95,
                            p99,
                        }
                    }
                    _ => h.clone(),
                };
                (k.clone(), delta)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Render as sorted `name value` lines — the format `.stats` and the
    /// tsql `.timer` report build on.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k} count={} p50={} p95={} p99={}\n",
                h.count,
                h.p50.map_or("-".to_string(), |v| v.to_string()),
                h.p95.map_or("-".to_string(), |v| v.to_string()),
                h.p99.map_or("-".to_string(), |v| v.to_string()),
            ));
        }
        out
    }
}

/// Percentile over an already-materialized bucket vector (used by
/// [`MetricsSnapshot::diff`], which has no live histogram to ask). The
/// overflow bucket resolves to the last bound, the best available
/// approximation without the live `max`.
fn percentile_of(bounds: &[u64], buckets: &[u64], p: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(bounds.get(i).copied().unwrap_or(*bounds.last()?));
        }
    }
    bounds.last().copied()
}

/// The registry: named instruments, created on first use and shared via
/// `Arc` thereafter. One registry per database absorbs the whole stack's
/// counters; the server layers its own instruments into the same registry
/// so `.stats` is a single snapshot.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The latency histogram named `name` (default microsecond buckets).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::latency()))
            .clone()
    }

    /// Point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, g)| (k.clone(), g.get())).collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pool.io_reads");
        c.inc();
        c.add(4);
        // Same name → same instrument.
        assert_eq!(reg.counter("pool.io_reads").get(), 5);
        reg.gauge("server.sessions").set(3);
        reg.gauge("server.sessions").set(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["pool.io_reads"], 5);
        assert_eq!(snap.gauges["server.sessions"], 2);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        // Pin the `value <= bound` semantics at every edge of a small
        // histogram: exactly-at-bound lands IN the bound's bucket,
        // bound+1 lands in the next, above-all lands in overflow.
        let h = Histogram::new(&[10, 20, 40]);
        h.record(0); // ≤ 10
        h.record(10); // ≤ 10 (boundary: inclusive)
        h.record(11); // ≤ 20 (boundary + 1 rolls over)
        h.record(20); // ≤ 20
        h.record(21); // ≤ 40
        h.record(40); // ≤ 40
        h.record(41); // overflow
        h.record(1_000_000); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 10 + 11 + 20 + 21 + 40 + 41 + 1_000_000);
    }

    #[test]
    fn percentiles_resolve_to_bucket_upper_bounds() {
        let h = Histogram::new(&[10, 20, 40]);
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        h.record(35);
        // 10 samples: p50 → 5th sample → first bucket → bound 10, but
        // clamped to the max sample only when max < bound (max here is 35).
        assert_eq!(h.percentile(50.0), Some(10));
        // p99 → 10th sample → the 35 in the ≤40 bucket; reported bound 40
        // clamps to the largest sample actually seen.
        assert_eq!(h.percentile(99.0), Some(35));
        // All-overflow histogram reports the observed max.
        let o = Histogram::new(&[10]);
        o.record(100);
        o.record(700);
        assert_eq!(h.percentile(100.0), Some(35));
        assert_eq!(o.percentile(50.0), Some(700));
        assert_eq!(o.percentile(99.0), Some(700));
        // Empty histogram has no percentiles.
        assert_eq!(Histogram::new(&[10]).percentile(50.0), None);
    }

    #[test]
    fn percentile_clamps_to_observed_max_below_bound() {
        let h = Histogram::new(&[1000]);
        h.record(3);
        // One sample of 3 in the ≤1000 bucket: report 3, not 1000.
        assert_eq!(h.percentile(50.0), Some(3));
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_buckets() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("wal.commits");
        let h = reg.histogram("server.statement_latency_us");
        c.add(10);
        h.record(80);
        let before = reg.snapshot();
        c.add(5);
        h.record(80);
        h.record(120);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counters["wal.commits"], 5);
        let hd = &delta.histograms["server.statement_latency_us"];
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 200);
        // Interval percentiles recompute over the two new samples only.
        assert_eq!(hd.p50, Some(100));
        assert_eq!(hd.p99, Some(250));
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.two").add(2);
        reg.counter("a.one").add(1);
        reg.gauge("c.gauge").set(9);
        let text = reg.snapshot().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["a.one 1", "b.two 2", "c.gauge 9"]);
    }
}
