//! The worked examples of the paper as integration fixtures: every figure
//! with a concrete result is asserted tuple-by-tuple.

mod common;

use common::{paper_p, paper_r};
use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_core::interval::month::ym;

fn assert_rows(out: &TemporalRelation, expected: &[(Vec<Value>, (i64, i64))]) {
    assert_eq!(out.len(), expected.len(), "cardinality mismatch:\n{out}");
    for (vals, (ts, te)) in expected {
        let iv = Interval::of(*ts, *te);
        assert!(
            out.iter().any(|(d, i)| d == vals.as_slice() && i == iv),
            "missing {vals:?} over {iv} in:\n{out}"
        );
    }
}

/// Fig. 1(b): Q1 = R ⟕ᵀ_{Min ≤ DUR(R.T) ≤ Max} P via extend + reduction.
#[test]
fn fig1b_query_q1() {
    let (r, p) = (paper_r(), paper_p());
    let alg = TemporalAlgebra::default();

    let ur = extend(&r).unwrap();
    // U(R) = (n, us, ue, ts, te), P = (a, min, max, ts, te):
    // DUR(us, ue) BETWEEN min AND max.
    let theta = Expr::Func(Func::Dur, vec![col(1), col(2)]).between(col(6), col(7));
    let q1 = alg
        .left_outer_join(&ur, &p, Some(theta))
        .unwrap()
        .project_data(&[0, 3, 4, 5]) // drop us, ue (Def. 4's π_E)
        .unwrap();

    let z = |n: &str, a: Option<i64>, min: Option<i64>, max: Option<i64>| {
        vec![
            Value::str(n),
            a.map_or(Value::Null, Value::Int),
            min.map_or(Value::Null, Value::Int),
            max.map_or(Value::Null, Value::Int),
        ]
    };
    assert_rows(
        &q1,
        &[
            // z1: Ann at long-term price for the first 5 months
            (
                z("ann", Some(40), Some(3), Some(7)),
                (ym(2012, 1), ym(2012, 6)),
            ),
            // z2: Joe likewise
            (
                z("joe", Some(40), Some(3), Some(7)),
                (ym(2012, 2), ym(2012, 6)),
            ),
            // z3: Ann, negotiated (ω) — from r1
            (z("ann", None, None, None), (ym(2012, 6), ym(2012, 8))),
            // z4: Ann, negotiated (ω) — from r3; NOT coalesced with z3
            (z("ann", None, None, None), (ym(2012, 8), ym(2012, 10))),
            // z5: Ann at long-term price again
            (
                z("ann", Some(40), Some(3), Some(7)),
                (ym(2012, 10), ym(2012, 12)),
            ),
        ],
    );
}

/// Fig. 3: the temporal normalization N_{}(R; R).
#[test]
fn fig3_normalization() {
    let r = paper_r();
    let alg = TemporalAlgebra::default();
    let out = alg.normalize(&r, &r, &[]).unwrap();
    assert_rows(
        &out,
        &[
            (vec![Value::str("ann")], (ym(2012, 1), ym(2012, 2))),
            (vec![Value::str("ann")], (ym(2012, 2), ym(2012, 6))),
            (vec![Value::str("ann")], (ym(2012, 6), ym(2012, 8))),
            (vec![Value::str("joe")], (ym(2012, 2), ym(2012, 6))),
            (vec![Value::str("ann")], (ym(2012, 8), ym(2012, 12))),
        ],
    );
}

/// Fig. 4: the alignment of P with respect to U(R) under
/// θ ≡ Min ≤ DUR(U) ≤ Max.
#[test]
fn fig4_alignment_of_prices() {
    let (r, p) = (paper_r(), paper_p());
    let alg = TemporalAlgebra::default();
    let ur = extend(&r).unwrap();
    // P ++ U(R): P = (a, min, max, ts, te), U(R) = (n, us, ue, ts, te).
    let theta = Expr::Func(Func::Dur, vec![col(6), col(7)]).between(col(1), col(2));
    let out = alg.align(&p, &ur, Some(theta)).unwrap();

    let s = |a: i64, min: i64, max: i64| vec![Value::Int(a), Value::Int(min), Value::Int(max)];
    assert_rows(
        &out,
        &[
            // s1 (50,1,2): no reservation of duration 1–2 → whole interval
            (s(50, 1, 2), (ym(2012, 1), ym(2012, 6))),
            // s2 (40,3,7): common intervals with r1 and r2
            (s(40, 3, 7), (ym(2012, 1), ym(2012, 6))),
            (s(40, 3, 7), (ym(2012, 2), ym(2012, 6))),
            // s3 (30,8,12): no 8–12 month reservation → whole year
            (s(30, 8, 12), (ym(2012, 1), ym(2013, 1))),
            // s4 (50,1,2): untouched
            (s(50, 1, 2), (ym(2012, 10), ym(2013, 1))),
            // s5 (40,3,7): common interval with r3, plus the uncovered tail
            (s(40, 3, 7), (ym(2012, 10), ym(2012, 12))),
            (s(40, 3, 7), (ym(2012, 12), ym(2013, 1))),
        ],
    );
}

/// Fig. 7: Q2 = ϑᵀ_{AVG(DUR(R.T))}(R), the reduction of the temporal
/// aggregation with a function over the original timestamps.
#[test]
fn fig7_aggregation_q2() {
    let r = paper_r();
    let alg = TemporalAlgebra::default();
    let ur = extend(&r).unwrap();
    let avg = AggCall::new(AggFunc::Avg, Expr::Func(Func::Dur, vec![col(1), col(2)]));
    let out = alg
        .aggregation(&ur, &[], vec![(avg, "avg_dur".to_string())])
        .unwrap();
    assert_rows(
        &out,
        &[
            (vec![Value::Double(7.0)], (ym(2012, 1), ym(2012, 2))),
            (vec![Value::Double(5.5)], (ym(2012, 2), ym(2012, 6))),
            (vec![Value::Double(7.0)], (ym(2012, 6), ym(2012, 8))),
            (vec![Value::Double(4.0)], (ym(2012, 8), ym(2012, 12))),
        ],
    );
}

/// Example 2: extended snapshot reducibility at timepoint 2012/1 — the
/// snapshot of Q1 at 2012/1 equals the nontemporal left outer join over
/// the extended snapshot.
#[test]
fn example2_extended_snapshot_at_january() {
    let (r, p) = (paper_r(), paper_p());
    let alg = TemporalAlgebra::default();
    let ur = extend(&r).unwrap();
    let theta = Expr::Func(Func::Dur, vec![col(1), col(2)]).between(col(6), col(7));
    let q1 = alg
        .left_outer_join(&ur, &p, Some(theta))
        .unwrap()
        .project_data(&[0, 3, 4, 5])
        .unwrap();
    let snap = q1.timeslice(ym(2012, 1));
    // {(Ann, 40, 3, 7)} — Example 2 step 4.
    assert_eq!(snap.len(), 1);
    assert_eq!(
        snap.rows()[0].values(),
        &[
            Value::str("ann"),
            Value::Int(40),
            Value::Int(3),
            Value::Int(7)
        ]
    );
}

/// Lemma 1 base case (Fig. 5): n = 1, m = 2 → exactly 5 aligned tuples.
#[test]
fn fig5_lemma1_base_case() {
    let alg = TemporalAlgebra::default();
    let r = common::rel1("r", &[(0, 1, 12)]);
    let s = common::rel1("s", &[(1, 2, 4), (2, 6, 9)]);
    let out = alg.align(&r, &s, None).unwrap();
    assert_eq!(out.len(), 5);
}

/// Example 9: the absorb operator removes the temporal duplicate produced
/// by the Cartesian product's reduction.
#[test]
fn example9_absorb() {
    let alg = TemporalAlgebra::default();
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("x", DataType::Str)]),
        vec![
            (vec![Value::str("a")], Interval::of(1, 9)),
            (vec![Value::str("b")], Interval::of(3, 7)),
        ],
    )
    .unwrap();
    let s = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("y", DataType::Str)]),
        vec![
            (vec![Value::str("c")], Interval::of(1, 9)),
            (vec![Value::str("d")], Interval::of(3, 7)),
        ],
    )
    .unwrap();
    let out = alg.cartesian_product(&r, &s).unwrap();
    // z1, z3, z4, z5 of Example 9 — z2 = (a, c, [3,7)) absorbed.
    assert_eq!(out.len(), 4);
    assert!(!out
        .iter()
        .any(|(d, iv)| { d == [Value::str("a"), Value::str("c")] && iv == Interval::of(3, 7) }));
}
