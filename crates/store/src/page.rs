//! Slotted heap pages — the on-disk unit of the storage layer.
//!
//! Every page is a fixed [`PAGE_SIZE`]-byte block with the classic
//! PostgreSQL-style slotted layout:
//!
//! ```text
//! +--------------------------------- PAGE_SIZE ---------------------------------+
//! | header | slot 0 | slot 1 | …  ->  free space  <-  … | record 1 | record 0 |
//! +------------------------------------------------------------------------------+
//!   20 B     4 B each (offset,len)                         grows downward
//! ```
//!
//! The fixed header carries a magic number, the **schema fingerprint** of
//! the owning table (so a page can never be decoded under the wrong
//! schema), the **tuple count**, and the slot/free-space pointers `lower`
//! (end of the slot array, grows up) and `upper` (start of record data,
//! grows down). `upper - lower` is the free space.

use crate::error::{StoreError, StoreResult};

/// Size of every page in bytes. 4 KiB keeps a page comfortably
/// cache-resident while holding on the order of a hundred typical tuples.
pub const PAGE_SIZE: usize = 4096;

/// Logical page number within one heap file (0-based).
pub type PageId = u32;

/// Slot index within a page.
pub type SlotId = u16;

const MAGIC: u32 = 0x5450_4147; // "TPAG"
const HEADER_SIZE: usize = 20;
/// Bytes per slot-array entry (offset u16 + length u16). Exposed so the
/// heap's fits-in-tail-page check can never diverge from
/// [`Page::insert`]'s free-space arithmetic.
pub const SLOT_SIZE: usize = 4;

const OFF_MAGIC: usize = 0;
const OFF_FINGERPRINT: usize = 4;
const OFF_TUPLE_COUNT: usize = 12;
const OFF_LOWER: usize = 14;
const OFF_UPPER: usize = 16;

/// The largest record a page can hold (one slot plus the data).
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// A fixed-size slotted page. The in-memory representation is exactly the
/// on-disk representation: reading and writing a page is a plain block
/// copy, no (de)serialization step.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("tuple_count", &self.tuple_count())
            .field("free_space", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        }
    }
}

impl Page {
    /// An uninitialized (all-zero) page, ready to be read into.
    pub fn zeroed() -> Page {
        Page::default()
    }

    /// A fresh, empty page carrying `fingerprint` in its header.
    pub fn init(fingerprint: u64) -> Page {
        let mut p = Page::default();
        p.put_u32(OFF_MAGIC, MAGIC);
        p.put_u64(OFF_FINGERPRINT, fingerprint);
        p.put_u16(OFF_TUPLE_COUNT, 0);
        p.put_u16(OFF_LOWER, HEADER_SIZE as u16);
        p.put_u16(OFF_UPPER, PAGE_SIZE as u16);
        p
    }

    // ---- raw access (for the disk manager) -------------------------------

    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    // ---- header fields ---------------------------------------------------

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]])
    }

    fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4 bytes"))
    }

    fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"))
    }

    fn put_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Schema fingerprint stamped at init time.
    pub fn fingerprint(&self) -> u64 {
        self.get_u64(OFF_FINGERPRINT)
    }

    /// Number of records stored in this page.
    pub fn tuple_count(&self) -> u16 {
        self.get_u16(OFF_TUPLE_COUNT)
    }

    fn lower(&self) -> usize {
        self.get_u16(OFF_LOWER) as usize
    }

    fn upper(&self) -> usize {
        self.get_u16(OFF_UPPER) as usize
    }

    /// Bytes available for one more record *including* its slot entry.
    pub fn free_space(&self) -> usize {
        self.upper().saturating_sub(self.lower())
    }

    /// Would a record of `len` bytes fit in this page right now? Exactly
    /// the check [`Page::insert`] performs.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Validate the structural invariants of a page read from disk,
    /// checking its fingerprint against the expected table schema.
    pub fn validate(&self, expected_fingerprint: u64) -> StoreResult<()> {
        if self.get_u32(OFF_MAGIC) != MAGIC {
            return Err(StoreError::Corrupt("bad page magic".into()));
        }
        if self.fingerprint() != expected_fingerprint {
            return Err(StoreError::Corrupt(format!(
                "page fingerprint {:#x} does not match table schema fingerprint {:#x}",
                self.fingerprint(),
                expected_fingerprint
            )));
        }
        let (lower, upper) = (self.lower(), self.upper());
        if lower < HEADER_SIZE || upper > PAGE_SIZE || lower > upper {
            return Err(StoreError::Corrupt(format!(
                "page pointers out of bounds: lower={lower} upper={upper}"
            )));
        }
        if (lower - HEADER_SIZE) / SLOT_SIZE != self.tuple_count() as usize {
            return Err(StoreError::Corrupt(
                "slot array length disagrees with tuple count".into(),
            ));
        }
        Ok(())
    }

    // ---- records ---------------------------------------------------------

    /// Append a record; returns its slot, or `None` when the page is full.
    /// Records larger than [`MAX_RECORD_SIZE`] are a [`StoreError::Capacity`].
    pub fn insert(&mut self, record: &[u8]) -> StoreResult<Option<SlotId>> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StoreError::Capacity(format!(
                "record of {} bytes exceeds page capacity of {MAX_RECORD_SIZE} bytes",
                record.len()
            )));
        }
        if self.free_space() < record.len() + SLOT_SIZE {
            return Ok(None);
        }
        let upper = self.upper() - record.len();
        self.bytes[upper..upper + record.len()].copy_from_slice(record);
        let slot = self.tuple_count();
        let slot_off = HEADER_SIZE + slot as usize * SLOT_SIZE;
        self.put_u16(slot_off, upper as u16);
        self.put_u16(slot_off + 2, record.len() as u16);
        self.put_u16(OFF_LOWER, (slot_off + SLOT_SIZE) as u16);
        self.put_u16(OFF_UPPER, upper as u16);
        self.put_u16(OFF_TUPLE_COUNT, slot + 1);
        Ok(Some(slot))
    }

    /// The record bytes at `slot`.
    pub fn record(&self, slot: SlotId) -> StoreResult<&[u8]> {
        if slot >= self.tuple_count() {
            return Err(StoreError::Corrupt(format!(
                "slot {slot} out of bounds (page has {} tuples)",
                self.tuple_count()
            )));
        }
        let slot_off = HEADER_SIZE + slot as usize * SLOT_SIZE;
        let off = self.get_u16(slot_off) as usize;
        let len = self.get_u16(slot_off + 2) as usize;
        if off < self.upper() || off + len > PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "slot {slot} points outside the page (offset={off} len={len})"
            )));
        }
        Ok(&self.bytes[off..off + len])
    }

    /// Iterate all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = StoreResult<&[u8]>> + '_ {
        (0..self.tuple_count()).map(move |s| self.record(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::init(7);
        assert_eq!(p.insert(b"hello").unwrap(), Some(0));
        assert_eq!(p.insert(b"world!").unwrap(), Some(1));
        assert_eq!(p.tuple_count(), 2);
        assert_eq!(p.record(0).unwrap(), b"hello");
        assert_eq!(p.record(1).unwrap(), b"world!");
        assert_eq!(p.fingerprint(), 7);
        let all: Vec<Vec<u8>> = p.records().map(|r| r.unwrap().to_vec()).collect();
        assert_eq!(all, vec![b"hello".to_vec(), b"world!".to_vec()]);
    }

    #[test]
    fn fills_up_then_refuses() {
        let mut p = Page::init(0);
        let rec = [0xabu8; 100];
        let mut n = 0usize;
        while p.insert(&rec).unwrap().is_some() {
            n += 1;
        }
        // 100 data + 4 slot bytes per record into the usable area.
        assert_eq!(n, (PAGE_SIZE - HEADER_SIZE) / (100 + SLOT_SIZE));
        assert!(p.free_space() < 104);
        // The page is unchanged by the failed insert.
        assert_eq!(p.tuple_count() as usize, n);
    }

    #[test]
    fn oversized_record_is_an_error() {
        let mut p = Page::init(0);
        let huge = vec![0u8; MAX_RECORD_SIZE + 1];
        assert!(matches!(p.insert(&huge), Err(StoreError::Capacity(_))));
        // Exactly max fits.
        let max = vec![1u8; MAX_RECORD_SIZE];
        assert_eq!(p.insert(&max).unwrap(), Some(0));
        assert_eq!(p.record(0).unwrap(), &max[..]);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::init(42);
        p.insert(b"abc").unwrap();
        let mut q = Page::zeroed();
        q.as_bytes_mut().copy_from_slice(p.as_bytes());
        q.validate(42).unwrap();
        assert_eq!(q.record(0).unwrap(), b"abc");
        assert!(q.validate(43).is_err());
    }

    #[test]
    fn validate_rejects_garbage() {
        let p = Page::zeroed();
        assert!(p.validate(0).is_err());
        let mut bad = Page::init(1);
        bad.insert(b"x").unwrap();
        bad.as_bytes_mut()[OFF_TUPLE_COUNT] = 9; // count disagrees with slots
        assert!(bad.validate(1).is_err());
    }

    #[test]
    fn empty_slot_read_errors() {
        let p = Page::init(0);
        assert!(p.record(0).is_err());
    }
}
