//! Day-granularity temporal data with civil dates, plus the side-car
//! utilities: Allen's interval relations and explicit coalescing.
//!
//! Run with: `cargo run --example calendar_dates`

use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hotel bookings at day granularity, built from civil dates
    // (the granularity of the paper's Incumben dataset).
    let d = |s: &str| Date::parse(s).expect("valid date");
    let bookings = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("guest", DataType::Str),
            Column::new("room", DataType::Int),
        ]),
        vec![
            (
                vec![Value::str("ann"), Value::Int(101)],
                date_interval(d("2012-01-05"), d("2012-01-20"))?,
            ),
            (
                vec![Value::str("ann"), Value::Int(101)],
                date_interval(d("2012-01-20"), d("2012-02-03"))?, // extension
            ),
            (
                vec![Value::str("joe"), Value::Int(102)],
                date_interval(d("2012-01-15"), d("2012-01-25"))?,
            ),
        ],
    )?;
    println!("bookings:\n{}", bookings.to_table_with(fmt_day));

    // Allen relations between the stays.
    let iv: Vec<Interval> = bookings.iter().map(|(_, iv)| iv).collect();
    println!(
        "ann's first stay {} ann's extension  → {:?}",
        iv[0],
        relate(&iv[0], &iv[1])
    );
    println!(
        "ann's first stay {} joe's stay       → {:?}",
        iv[0],
        relate(&iv[0], &iv[2])
    );

    // Occupied-rooms count over time (sequenced aggregation)…
    let alg = TemporalAlgebra::default();
    let occupancy = alg.aggregation(
        &bookings,
        &[],
        vec![(AggCall::count_star(), "occupied".to_string())],
    )?;
    println!(
        "occupancy (change preserving):\n{}",
        occupancy.sorted().to_table_with(fmt_day)
    );

    // … and ann's presence: change-preserved fragments vs the coalesced view.
    let ann = alg.selection(&bookings, col(0).eq(lit(Value::str("ann"))))?;
    let ann_rooms = alg.projection(&ann, &[0])?;
    println!(
        "ann (change preserving):\n{}",
        ann_rooms.sorted().to_table_with(fmt_day)
    );
    let merged = coalesce(&ann_rooms)?;
    println!(
        "ann (coalesced for display):\n{}",
        merged.to_table_with(fmt_day)
    );
    assert!(snapshot_equivalent(&ann_rooms, &merged)?);

    Ok(())
}
