//! SQL front-end errors.

use std::fmt;

use temporal_core::error::TemporalError;
use temporal_engine::prelude::EngineError;

/// Errors from lexing, parsing, analysis or execution of SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer failure (bad character, unterminated string, …).
    Lex { pos: usize, message: String },
    /// Grammar failure.
    Parse(String),
    /// Name resolution / semantic failure.
    Analyze(String),
    /// Planning or execution failure.
    Engine(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Analyze(m) => write!(f, "analyze error: {m}"),
            SqlError::Engine(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<EngineError> for SqlError {
    fn from(e: EngineError) -> Self {
        SqlError::Engine(e.to_string())
    }
}

impl From<TemporalError> for SqlError {
    fn from(e: TemporalError) -> Self {
        SqlError::Engine(e.to_string())
    }
}

/// Result alias for the SQL layer.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SqlError = EngineError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        let e: SqlError = TemporalError::Unsupported("x".into()).into();
        assert!(e.to_string().contains("unsupported"));
        let e = SqlError::Lex {
            pos: 3,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 3"));
    }
}
