//! End-to-end SQL tests: the SQL pipeline (lex → parse → analyze → plan →
//! execute) must agree with the direct algebra API, and the planner
//! switches must steer the group-construction join (Fig. 13's mechanism).

mod common;

use common::{paper_p, paper_r, random_trel};
use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_alignment::sql::Session;

#[test]
fn sql_align_agrees_with_algebra_align() {
    let r = random_trel(5, 10, 3, 20);
    let s = random_trel(6, 10, 3, 20);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    session.register_temporal("s", &s).unwrap();

    let sql_out = session
        .query_temporal("SELECT * FROM (r ALIGN s ON r.k = s.k) x")
        .unwrap();
    let alg = TemporalAlgebra::default();
    let api_out = alg.align(&r, &s, Some(col(0).eq(col(3)))).unwrap();
    assert!(
        sql_out.same_set(&api_out),
        "sql:\n{sql_out}\napi:\n{api_out}"
    );
}

#[test]
fn sql_normalize_agrees_with_algebra_normalize() {
    let r = random_trel(7, 10, 3, 20);
    let s = random_trel(8, 10, 3, 20);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    session.register_temporal("s", &s).unwrap();

    let sql_out = session
        .query_temporal("SELECT * FROM (r NORMALIZE s USING(k)) x")
        .unwrap();
    let alg = TemporalAlgebra::default();
    let api_out = alg.normalize(&r, &s, &[(0, 0)]).unwrap();
    assert!(sql_out.same_set(&api_out));
}

#[test]
fn full_reduction_rule_via_sql_matches_algebra_join() {
    // Hand-write the inner-join reduction rule in SQL (Table 2) and
    // compare with the algebra's temporal join.
    let r = random_trel(9, 8, 2, 16);
    let s = random_trel(10, 8, 2, 16);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    session.register_temporal("s", &s).unwrap();

    let sql_out = session
        .query_temporal(
            "SELECT ABSORB x.k, y.k, x.ts, x.te \
             FROM (r ALIGN s ON r.k = s.k) x \
             JOIN (s ALIGN r ON s.k = r.k) y \
             ON x.k = y.k AND x.ts = y.ts AND x.te = y.te",
        )
        .unwrap();
    let alg = TemporalAlgebra::default();
    let api_out = alg.join(&r, &s, Some(col(0).eq(col(3)))).unwrap();
    assert!(
        sql_out.same_set(&api_out),
        "sql:\n{sql_out}\napi:\n{api_out}"
    );
}

#[test]
fn planner_switches_steer_the_group_construction_join() {
    // The paper's Fig. 13 workflow through SQL: normalization's internal
    // left outer join follows the enabled join methods.
    let r = random_trel(11, 40, 6, 60);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();

    let q = "SELECT * FROM (r r1 NORMALIZE r r2 USING(k)) x";

    let all = session.explain(q).unwrap();
    assert!(
        all.contains("HashJoin[Left]") || all.contains("MergeJoin[Left]"),
        "all-enabled plan should use a keyed join:\n{all}"
    );

    session.execute("SET enable_hashjoin = off").unwrap();
    session.execute("SET enable_mergejoin = off").unwrap();
    let nl = session.explain(q).unwrap();
    assert!(
        nl.contains("NestedLoopJoin[Left]"),
        "nestloop-only plan:\n{nl}"
    );

    // Results identical either way.
    session.execute("SET enable_hashjoin = on").unwrap();
    session.execute("SET enable_mergejoin = on").unwrap();
    let fast = session.query(q).unwrap();
    session.execute("SET enable_hashjoin = off").unwrap();
    session.execute("SET enable_mergejoin = off").unwrap();
    let slow = session.query(q).unwrap();
    assert!(fast.same_set(&slow));
}

#[test]
fn snodgrass_not_exists_formulation_runs_via_sql() {
    // The core of the `sql` baseline expressed in actual SQL: maximal
    // uncovered candidate gaps validated with NOT EXISTS.
    let r = paper_r();
    let p = paper_p();
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    session.register_temporal("p", &p).unwrap();

    // For each reservation: does any price period cover its whole span?
    let out = session
        .query(
            "SELECT n FROM r WHERE NOT EXISTS \
             (SELECT * FROM p WHERE p.ts <= r.ts AND r.te <= p.te)",
        )
        .unwrap();
    // Only s3 spans the whole year, and it covers every reservation.
    assert_eq!(out.len(), 0, "{out}");

    let out = session
        .query(
            "SELECT n FROM r WHERE NOT EXISTS \
             (SELECT * FROM p WHERE p.a = 40 AND p.ts <= r.ts AND r.te <= p.te)",
        )
        .unwrap();
    // The 40-price periods cover [1,6) and [10,13): r1 [1,8), r3 [8,12)
    // are not fully covered; r2 [2,6) is.
    assert_eq!(out.len(), 2, "{out}");
}

#[test]
fn group_by_aggregates_with_arithmetic() {
    let r = random_trel(13, 12, 3, 20);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    let out = session
        .query(
            "SELECT k, count(*) c, max(te) - min(ts) span \
             FROM r GROUP BY k ORDER BY k",
        )
        .unwrap();
    assert_eq!(out.schema().names(), vec!["k", "c", "span"]);
    // Cross-check one group against the algebra.
    for row in out.rows() {
        let k = row[0].as_int().unwrap();
        let expected = r.iter().filter(|(d, _)| d[0] == Value::Int(k)).count() as i64;
        assert_eq!(row[1], Value::Int(expected));
    }
}

#[test]
fn explain_renders_temporal_nodes() {
    let r = paper_r();
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    let plan = session
        .explain("SELECT * FROM (r r1 ALIGN r r2 ON r1.n = r2.n) x")
        .unwrap();
    assert!(plan.contains("TemporalAligner"), "{plan}");
    let plan = session
        .explain("SELECT * FROM (r r1 NORMALIZE r r2 USING()) x")
        .unwrap();
    assert!(plan.contains("TemporalNormalizer"), "{plan}");
}

#[test]
fn right_and_full_outer_joins_via_sql() {
    let r = random_trel(51, 8, 3, 16);
    let s = random_trel(52, 8, 3, 16);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    session.register_temporal("s", &s).unwrap();

    // Right outer join of aligned relations per Table 2.
    let sql_out = session
        .query_temporal(
            "SELECT ABSORB x.k, y.k, coalesce(x.ts, y.ts) ts, coalesce(x.te, y.te) te \
             FROM (r ALIGN s ON r.k = s.k) x \
             RIGHT OUTER JOIN (s ALIGN r ON s.k = r.k) y \
             ON x.k = y.k AND x.ts = y.ts AND x.te = y.te",
        )
        .unwrap();
    let alg = TemporalAlgebra::default();
    let api_out = alg
        .right_outer_join(&r, &s, Some(col(0).eq(col(3))))
        .unwrap();
    assert!(
        sql_out.same_set(&api_out),
        "sql:\n{sql_out}\napi:\n{api_out}"
    );

    let sql_out = session
        .query_temporal(
            "SELECT ABSORB x.k, y.k, coalesce(x.ts, y.ts) ts, coalesce(x.te, y.te) te \
             FROM (r ALIGN s ON r.k = s.k) x \
             FULL OUTER JOIN (s ALIGN r ON s.k = r.k) y \
             ON x.k = y.k AND x.ts = y.ts AND x.te = y.te",
        )
        .unwrap();
    let api_out = alg
        .full_outer_join(&r, &s, Some(col(0).eq(col(3))))
        .unwrap();
    assert!(
        sql_out.same_set(&api_out),
        "sql:\n{sql_out}\napi:\n{api_out}"
    );
}

#[test]
fn from_subqueries_and_nested_ctes() {
    let r = random_trel(53, 10, 3, 18);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();

    // Subquery in FROM with aggregation on top.
    let out = session
        .query(
            "SELECT q.k, count(*) c FROM \
             (SELECT k, ts, te FROM r WHERE te - ts >= 2) q \
             GROUP BY q.k ORDER BY q.k",
        )
        .unwrap();
    for row in out.rows() {
        let k = row[0].as_int().unwrap();
        let expected = r
            .iter()
            .filter(|(d, iv)| d[0] == Value::Int(k) && iv.duration() >= 2)
            .count() as i64;
        assert_eq!(row[1], Value::Int(expected));
    }

    // A CTE referencing an earlier CTE.
    let out = session
        .query(
            "WITH a AS (SELECT k, ts, te FROM r WHERE k > 0), \
                  b AS (SELECT k, ts, te FROM a WHERE te - ts >= 2) \
             SELECT count(*) c FROM b",
        )
        .unwrap();
    let expected = r
        .iter()
        .filter(|(d, iv)| d[0].as_int().unwrap() > 0 && iv.duration() >= 2)
        .count() as i64;
    assert_eq!(out.rows()[0][0], Value::Int(expected));
}

#[test]
fn sql_normalize_empty_using_matches_fig3_semantics() {
    // N_{}(R; R) through SQL on the paper's reservations.
    let r = paper_r();
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    let out = session
        .query_temporal("SELECT * FROM (r r1 NORMALIZE r r2 USING()) x")
        .unwrap();
    let alg = TemporalAlgebra::default();
    let api = alg.normalize(&r, &r, &[]).unwrap();
    assert!(out.same_set(&api));
    assert_eq!(out.len(), 5); // Fig. 3
}

#[test]
fn distinct_and_absorb_quantifiers_differ() {
    // DISTINCT removes exact duplicates only; ABSORB also removes covered
    // value-equivalent tuples.
    let rel = Relation::from_values(
        temporal_core::trel::temporal_schema(vec![Column::new("k", DataType::Int)]),
        vec![
            vec![Value::Int(1), Value::Int(0), Value::Int(9)],
            vec![Value::Int(1), Value::Int(2), Value::Int(5)], // covered
            vec![Value::Int(2), Value::Int(2), Value::Int(5)],
        ],
    )
    .unwrap();
    let mut session = Session::new();
    session.register_table("t", rel).unwrap();
    let distinct = session.query("SELECT DISTINCT k, ts, te FROM t").unwrap();
    assert_eq!(distinct.len(), 3);
    let absorbed = session.query("SELECT ABSORB k, ts, te FROM t").unwrap();
    assert_eq!(absorbed.len(), 2);
}
