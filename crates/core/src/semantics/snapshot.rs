//! Snapshot reducibility (Def. 1) and extended snapshot reducibility
//! (Def. 4) as executable checks.
//!
//! `ψᵀ` is snapshot reducible to `ψ` iff
//! `∀t: τ_t(ψᵀ(r₁,…,rₙ)) ≡ ψ(τ_t(r₁),…,τ_t(rₙ))`. Because snapshots are
//! constant between consecutive interval endpoints, verifying the equation
//! at every *critical point* (each argument/result endpoint) is exhaustive
//! over the whole (infinite) time domain.
//!
//! Extended snapshot reducibility is the same check run on *extended*
//! arguments (timestamps propagated into data columns and θ referencing
//! the propagated copies) followed by a projection onto E — callers
//! construct that shape with [`crate::primitives::extend`]; the check
//! itself is identical.

use temporal_engine::relation::Relation;

use crate::error::TemporalResult;
use crate::interval::TimePoint;
use crate::reference::oracle::snapshot_eval;
use crate::semantics::op::TemporalOp;
use crate::trel::TemporalRelation;

/// All distinct endpoints of the given relations, sorted — the points at
/// which snapshots can change.
pub fn critical_points(rels: &[&TemporalRelation]) -> Vec<TimePoint> {
    let mut pts: Vec<TimePoint> = rels.iter().flat_map(|r| r.endpoints()).collect();
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Check Def. 1 for `result = opᵀ(args)`: returns the time points at which
/// `τ_t(result)` differs from the nontemporal evaluation (empty = the
/// operator is snapshot reducible on this input).
pub fn check_snapshot_reducibility(
    op: &TemporalOp,
    args: &[&TemporalRelation],
    result: &TemporalRelation,
) -> TemporalResult<Vec<TimePoint>> {
    let mut rels: Vec<&TemporalRelation> = args.to_vec();
    rels.push(result);
    let mut violations = Vec::new();
    for t in critical_points(&rels) {
        let expected_rows = snapshot_eval(op, args, t)?;
        let expected = Relation::new(result.data_schema(), expected_rows)
            .map_err(crate::error::TemporalError::from)?;
        let actual = result.timeslice(t);
        if !actual.same_set(&expected) {
            violations.push(t);
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TemporalAlgebra;
    use crate::interval::Interval;
    use temporal_engine::prelude::*;

    fn rel(rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn critical_points_union_endpoints() {
        let a = rel(&[("x", 0, 4)]);
        let b = rel(&[("y", 2, 8)]);
        assert_eq!(critical_points(&[&a, &b]), vec![0, 2, 4, 8]);
    }

    #[test]
    fn reduced_join_is_snapshot_reducible() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 8), ("b", 1, 4)]);
        let s = rel(&[("x", 2, 6), ("y", 5, 10)]);
        let op = TemporalOp::FullOuterJoin { theta: None };
        let result = op.evaluate(&alg, &[&r, &s]).unwrap();
        let violations = check_snapshot_reducibility(&op, &[&r, &s], &result).unwrap();
        assert!(violations.is_empty(), "violations at {violations:?}");
    }

    #[test]
    fn checker_detects_wrong_results() {
        let r = rel(&[("a", 0, 8)]);
        let s = rel(&[("x", 2, 6)]);
        let op = TemporalOp::Join { theta: None };
        // Deliberately wrong "result": the un-intersected interval.
        let wrong = TemporalRelation::from_rows(
            op.result_data_schema(&[&r, &s]).unwrap(),
            vec![(vec![Value::str("a"), Value::str("x")], Interval::of(0, 8))],
        )
        .unwrap();
        let violations = check_snapshot_reducibility(&op, &[&r, &s], &wrong).unwrap();
        assert!(!violations.is_empty());
    }

    #[test]
    fn checker_detects_missing_tuples() {
        let r = rel(&[("a", 0, 8)]);
        let op = TemporalOp::Selection {
            predicate: lit(true),
        };
        let empty = TemporalRelation::from_rows(r.data_schema(), vec![]).unwrap();
        let violations = check_snapshot_reducibility(&op, &[&r], &empty).unwrap();
        assert!(!violations.is_empty());
    }
}
