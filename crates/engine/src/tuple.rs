//! Rows (tuples). Cheap to clone: backed by `Arc<[Value]>`, so hash tables,
//! sort buffers and join outputs share storage.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::value::Value;

/// An immutable row of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(Arc<[Value]>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(Arc::from(values))
    }

    /// A row of `n` NULLs (ω-padding for outer joins).
    pub fn nulls(n: usize) -> Self {
        Row(Arc::from(vec![Value::Null; n]))
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(Arc::from(v))
    }

    /// `self` followed by `n` NULLs.
    pub fn concat_nulls(&self, n: usize) -> Row {
        let mut v = Vec::with_capacity(self.len() + n);
        v.extend_from_slice(&self.0);
        v.extend(std::iter::repeat_n(Value::Null, n));
        Row(Arc::from(v))
    }

    /// `n` NULLs followed by `self`.
    pub fn nulls_concat(&self, n: usize) -> Row {
        let mut v = Vec::with_capacity(self.len() + n);
        v.extend(std::iter::repeat_n(Value::Null, n));
        v.extend_from_slice(&self.0);
        Row(Arc::from(v))
    }

    /// Keep the values at `idxs`, in that order.
    pub fn project(&self, idxs: &[usize]) -> Row {
        Row(idxs.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// The contiguous sub-row `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> Row {
        Row(Arc::from(&self.0[from..to]))
    }

    /// Copy into a mutable `Vec` for ad-hoc construction.
    pub fn to_vec(&self) -> Vec<Value> {
        self.0.to_vec()
    }
}

impl Index<usize> for Row {
    type Output = Value;
    #[inline]
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row::new(v)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn concat_projects_slices() {
        let a = r(&[1, 2]);
        let b = r(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c[2], Value::Int(3));
        assert_eq!(c.project(&[2, 0]).values(), r(&[3, 1]).values());
        assert_eq!(c.slice(1, 3), r(&[2, 3]));
    }

    #[test]
    fn null_padding() {
        let a = r(&[7]);
        let padded = a.concat_nulls(2);
        assert_eq!(padded.len(), 3);
        assert!(padded[1].is_null() && padded[2].is_null());
        let padded = a.nulls_concat(1);
        assert!(padded[0].is_null());
        assert_eq!(padded[1], Value::Int(7));
    }

    #[test]
    fn rows_order_lexicographically() {
        let mut v = vec![r(&[2, 1]), r(&[1, 9]), r(&[1, 2])];
        v.sort();
        assert_eq!(v, vec![r(&[1, 2]), r(&[1, 9]), r(&[2, 1])]);
    }

    #[test]
    fn display_row() {
        assert_eq!(r(&[1, 2]).to_string(), "(1, 2)");
    }
}
