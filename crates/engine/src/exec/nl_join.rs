//! Nested-loop join: the fallback algorithm for arbitrary θ conditions.
//!
//! Supports all join types, including the semi/anti joins that SQL
//! `EXISTS` / `NOT EXISTS` compile to. On non-equi conditions this is the
//! only applicable algorithm — which is exactly why the paper's `sql`
//! baseline degenerates on the `Ddisj`/`Drand` workloads (Sec. 7.4).

use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::expr::Expr;
use crate::plan::JoinType;
use crate::schema::Schema;
use crate::tuple::Row;

enum Phase {
    Probe,
    RightUnmatched(usize),
    Done,
}

/// Nested-loop join; materializes the right (inner) side.
pub struct NestedLoopJoinExec {
    left: BoxedExec,
    right: Option<BoxedExec>,
    right_rows: Vec<Row>,
    right_matched: Vec<bool>,
    right_width: usize,
    join_type: JoinType,
    condition: Option<Expr>,
    schema: Schema,
    cur_left: Option<Row>,
    right_pos: usize,
    cur_left_matched: bool,
    phase: Phase,
}

impl NestedLoopJoinExec {
    pub fn new(
        left: BoxedExec,
        right: BoxedExec,
        join_type: JoinType,
        condition: Option<Expr>,
    ) -> Self {
        let right_width = right.schema().len();
        let schema = if join_type.emits_right() {
            left.schema().concat(right.schema())
        } else {
            left.schema().clone()
        };
        NestedLoopJoinExec {
            left,
            right: Some(right),
            right_rows: Vec::new(),
            right_matched: Vec::new(),
            right_width,
            join_type,
            condition,
            schema,
            cur_left: None,
            right_pos: 0,
            cur_left_matched: false,
            phase: Phase::Probe,
        }
    }

    fn materialize_right(&mut self, state: &ExecutionState) -> EngineResult<()> {
        if let Some(mut right) = self.right.take() {
            while let Some(r) = right.next(state)? {
                self.right_rows.push(r);
            }
            self.right_matched = vec![false; self.right_rows.len()];
        }
        Ok(())
    }

    fn pred(&self, combined: &Row) -> EngineResult<bool> {
        match &self.condition {
            None => Ok(true),
            Some(c) => c.eval_pred(combined.values()),
        }
    }
}

impl ExecNode for NestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        self.materialize_right(state)?;
        loop {
            match self.phase {
                Phase::Done => return Ok(None),
                Phase::RightUnmatched(ref mut i) => {
                    while *i < self.right_rows.len() {
                        let idx = *i;
                        *i += 1;
                        if !self.right_matched[idx] {
                            let left_width = self.schema.len() - self.right_width;
                            return Ok(Some(self.right_rows[idx].nulls_concat(left_width)));
                        }
                    }
                    self.phase = Phase::Done;
                }
                Phase::Probe => {
                    if self.cur_left.is_none() {
                        match self.left.next(state)? {
                            Some(l) => {
                                self.cur_left = Some(l);
                                self.right_pos = 0;
                                self.cur_left_matched = false;
                            }
                            None => {
                                self.phase = if self.join_type.emits_right_unmatched() {
                                    Phase::RightUnmatched(0)
                                } else {
                                    Phase::Done
                                };
                                continue;
                            }
                        }
                    }
                    let left_row = self.cur_left.as_ref().expect("set above").clone();
                    while self.right_pos < self.right_rows.len() {
                        let i = self.right_pos;
                        self.right_pos += 1;
                        let combined = left_row.concat(&self.right_rows[i]);
                        if self.pred(&combined)? {
                            self.cur_left_matched = true;
                            self.right_matched[i] = true;
                            match self.join_type {
                                JoinType::Inner
                                | JoinType::Left
                                | JoinType::Right
                                | JoinType::Full => return Ok(Some(combined)),
                                JoinType::Semi => {
                                    self.cur_left = None;
                                    return Ok(Some(left_row));
                                }
                                JoinType::Anti => break,
                            }
                        }
                    }
                    // Right side exhausted (or anti-match) for this left row.
                    let matched = self.cur_left_matched;
                    self.cur_left = None;
                    if !matched {
                        match self.join_type {
                            JoinType::Left | JoinType::Full => {
                                return Ok(Some(left_row.concat_nulls(self.right_width)))
                            }
                            JoinType::Anti => return Ok(Some(left_row)),
                            _ => {}
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, ExecutionState, SeqScanExec};
    use crate::expr::col;
    use crate::value::Value;

    fn scan(vals: &[(i64, i64)]) -> BoxedExec {
        Box::new(SeqScanExec::new(int2_rel(("k", "v"), vals).into_shared()))
    }

    fn join(
        l: &[(i64, i64)],
        r: &[(i64, i64)],
        jt: JoinType,
        cond: Option<Expr>,
    ) -> Vec<Vec<Value>> {
        let node = NestedLoopJoinExec::new(scan(l), scan(r), jt, cond);
        collect(Box::new(node), &ExecutionState::default())
            .unwrap()
            .rows()
            .iter()
            .map(|r| r.to_vec())
            .collect()
    }

    // condition: l.k = r.k  (left width 2)
    fn keq() -> Option<Expr> {
        Some(col(0).eq(col(2)))
    }

    #[test]
    fn inner_join() {
        let out = join(
            &[(1, 10), (2, 20)],
            &[(2, 200), (3, 300)],
            JoinType::Inner,
            keq(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(2));
        assert_eq!(out[0][3], Value::Int(200));
    }

    #[test]
    fn cross_product_with_none_condition() {
        let out = join(
            &[(1, 1), (2, 2)],
            &[(3, 3), (4, 4), (5, 5)],
            JoinType::Inner,
            None,
        );
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn left_outer_pads_nulls() {
        let out = join(&[(1, 10), (2, 20)], &[(2, 200)], JoinType::Left, keq());
        assert_eq!(out.len(), 2);
        let unmatched = out.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert!(unmatched[2].is_null() && unmatched[3].is_null());
    }

    #[test]
    fn right_outer_pads_left() {
        let out = join(&[(2, 20)], &[(2, 200), (3, 300)], JoinType::Right, keq());
        assert_eq!(out.len(), 2);
        let unmatched = out.iter().find(|r| r[3] == Value::Int(300)).unwrap();
        assert!(unmatched[0].is_null() && unmatched[1].is_null());
    }

    #[test]
    fn full_outer_pads_both() {
        let out = join(
            &[(1, 10), (2, 20)],
            &[(2, 200), (3, 300)],
            JoinType::Full,
            keq(),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn semi_join_emits_left_once() {
        let out = join(
            &[(1, 10), (2, 20)],
            &[(2, 200), (2, 201)],
            JoinType::Semi,
            keq(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![Value::Int(2), Value::Int(20)]);
    }

    #[test]
    fn anti_join_emits_non_matching_left() {
        let out = join(
            &[(1, 10), (2, 20)],
            &[(2, 200), (2, 201)],
            JoinType::Anti,
            keq(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![Value::Int(1), Value::Int(10)]);
    }

    #[test]
    fn anti_join_with_empty_right_emits_all() {
        let out = join(&[(1, 10), (2, 20)], &[], JoinType::Anti, keq());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn theta_join_non_equi() {
        // l.v < r.v
        let cond = Some(col(1).lt(col(3)));
        let out = join(
            &[(0, 5), (0, 25)],
            &[(0, 10), (0, 20)],
            JoinType::Inner,
            cond,
        );
        assert_eq!(out.len(), 2); // 5<10, 5<20
    }

    #[test]
    fn null_condition_never_matches() {
        // l.k = r.k where right k is NULL
        use crate::relation::Relation;
        use crate::schema::{Column, DataType, Schema};
        let left = scan(&[(1, 10)]);
        let right_rel = Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
            vec![vec![Value::Null, Value::Int(9)]],
        )
        .unwrap()
        .into_shared();
        let right = Box::new(SeqScanExec::new(right_rel));
        let node = NestedLoopJoinExec::new(left, right, JoinType::Left, keq());
        let out = collect(Box::new(node), &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.rows()[0][2].is_null());
    }

    #[test]
    fn limit_interplay_streams() {
        // Probe must be incremental: first row available without draining.
        let mut node = NestedLoopJoinExec::new(
            scan(&[(1, 1), (2, 2)]),
            scan(&[(1, 1)]),
            JoinType::Left,
            keq(),
        );
        let first = node.next(&ExecutionState::default()).unwrap().unwrap();
        assert_eq!(first[0], Value::Int(1));
    }
}
