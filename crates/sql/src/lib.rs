//! # temporal-sql
//!
//! The SQL surface of *Temporal Alignment* (Sec. 6.2/6.3): a lexer,
//! recursive-descent parser, analyzer and session for a SQL dialect
//! extended with the paper's temporal primitives:
//!
//! ```text
//! aligned_table:    table_ref ALIGN table_ref ON a_expr
//! normalized_table: table_ref NORMALIZE table_ref USING ( column_list )
//! ```
//!
//! both usable (parenthesized, with an alias) wherever a table reference
//! may appear, plus `ABSORB` in place of `DISTINCT` to remove temporal
//! duplicates, and `DUR(ts, te)` as the duration UDF of the paper's
//! examples. As in the paper, *"this is just for illustration purposes —
//! the primitives are building blocks that support the implementation of
//! the temporal SQL extensions proposed in the past"*; the reduction rules
//! themselves live in `temporal-core`.
//!
//! `SET enable_nestloop|enable_hashjoin|enable_mergejoin = on|off` switches
//! the planner's join methods (the Fig. 13 experiment), and `EXPLAIN`
//! prints the chosen physical plan.
//!
//! ```
//! use temporal_sql::Session;
//! use temporal_core::prelude::*;
//! use temporal_engine::prelude::*;
//!
//! let mut session = Session::new();
//! let r = TemporalRelation::from_rows(
//!     Schema::new(vec![Column::new("n", DataType::Str)]),
//!     vec![(vec![Value::str("ann")], Interval::of(0, 7))],
//! )
//! .unwrap();
//! session.register_temporal("r", &r).unwrap();
//! let out = session
//!     .query("SELECT n, ts, te FROM (r r1 NORMALIZE r r2 USING()) x")
//!     .unwrap();
//! assert_eq!(out.len(), 1);
//! ```

pub mod analyzer;
pub mod ast;
pub mod csv;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod session;
pub mod token;

pub use analyzer::Analyzer;
pub use error::{SqlError, SqlResult};
pub use parser::parse_statement;
pub use session::{DatabaseSqlExt, Session, SqlOutput};

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_core::prelude::*;
    use temporal_engine::prelude::*;

    fn session_with_rp() -> Session {
        // The running example of the paper (Fig. 1), months as integers
        // with 2012/1 ↦ 0.
        use temporal_core::interval::month::ym;
        let mut s = Session::new();
        let r = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (
                    vec![Value::str("ann")],
                    Interval::of(ym(2012, 1), ym(2012, 8)),
                ),
                (
                    vec![Value::str("joe")],
                    Interval::of(ym(2012, 2), ym(2012, 6)),
                ),
                (
                    vec![Value::str("ann")],
                    Interval::of(ym(2012, 8), ym(2012, 12)),
                ),
            ],
        )
        .unwrap();
        let p = TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("min", DataType::Int),
                Column::new("max", DataType::Int),
            ]),
            vec![
                (
                    vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                    Interval::of(ym(2012, 1), ym(2012, 6)),
                ),
                (
                    vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                    Interval::of(ym(2012, 1), ym(2012, 6)),
                ),
                (
                    vec![Value::Int(30), Value::Int(8), Value::Int(12)],
                    Interval::of(ym(2012, 1), ym(2013, 1)),
                ),
                (
                    vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                    Interval::of(ym(2012, 10), ym(2013, 1)),
                ),
                (
                    vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                    Interval::of(ym(2012, 10), ym(2013, 1)),
                ),
            ],
        )
        .unwrap();
        s.register_temporal("r", &r).unwrap();
        s.register_temporal("p", &p).unwrap();
        s
    }

    #[test]
    fn basic_select_where() {
        let mut s = session_with_rp();
        let out = s.query("SELECT n FROM r WHERE n = 'ann'").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn paper_q1_via_sql_matches_fig1b() {
        use temporal_core::interval::month::ym;
        // Sec. 6.2's SQL formulation of Q1.
        let mut s = session_with_rp();
        let out = s
            .query(
                "WITH r AS (SELECT Ts Us, Te Ue, * FROM r) \
                 SELECT ABSORB n, a, min, max, x.Ts, x.Te \
                 FROM (r ALIGN p ON DUR(Us,Ue) BETWEEN Min AND Max) x \
                 LEFT OUTER JOIN \
                 (p ALIGN r ON DUR(Us,Ue) BETWEEN Min AND Max) y \
                 ON DUR(Us,Ue) BETWEEN Min AND Max AND \
                    x.Ts = y.Ts AND x.Te = y.Te",
            )
            .unwrap();
        // Fig. 1(b): z1..z5.
        let expected = vec![
            (
                vec![
                    Value::str("ann"),
                    Value::Int(40),
                    Value::Int(3),
                    Value::Int(7),
                ],
                (ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![
                    Value::str("joe"),
                    Value::Int(40),
                    Value::Int(3),
                    Value::Int(7),
                ],
                (ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann"), Value::Null, Value::Null, Value::Null],
                (ym(2012, 6), ym(2012, 8)),
            ),
            (
                vec![Value::str("ann"), Value::Null, Value::Null, Value::Null],
                (ym(2012, 8), ym(2012, 10)),
            ),
            (
                vec![
                    Value::str("ann"),
                    Value::Int(40),
                    Value::Int(3),
                    Value::Int(7),
                ],
                (ym(2012, 10), ym(2012, 12)),
            ),
        ];
        assert_eq!(out.len(), expected.len(), "{out}");
        for (vals, (ts, te)) in expected {
            let mut want = vals.clone();
            want.push(Value::Int(ts));
            want.push(Value::Int(te));
            assert!(
                out.rows().iter().any(|row| row.values() == want.as_slice()),
                "missing {want:?} in\n{out}"
            );
        }
    }

    #[test]
    fn paper_q2_aggregation_via_sql_matches_fig7() {
        use temporal_core::interval::month::ym;
        // Sec. 6.3's temporal aggregation: average reservation duration.
        let mut s = session_with_rp();
        let out = s
            .query(
                "WITH r AS (SELECT Ts Us, Te Ue, * FROM r) \
                 SELECT AVG(DUR(Us,Ue)) avgdur, Ts, Te \
                 FROM (r r1 NORMALIZE r r2 USING()) x \
                 GROUP BY Ts, Te",
            )
            .unwrap();
        // Fig. 7: (7) over [1,2), (5.5) over [2,6), (7) over [6,8),
        //         (4) over [8,12)   (months relative to 2012/1).
        let expected = vec![
            (7.0, ym(2012, 1), ym(2012, 2)),
            (5.5, ym(2012, 2), ym(2012, 6)),
            (7.0, ym(2012, 6), ym(2012, 8)),
            (4.0, ym(2012, 8), ym(2012, 12)),
        ];
        assert_eq!(out.len(), expected.len(), "{out}");
        for (avg, ts, te) in expected {
            assert!(
                out.rows().iter().any(|row| {
                    row[0] == Value::Double(avg)
                        && row[1] == Value::Int(ts)
                        && row[2] == Value::Int(te)
                }),
                "missing ({avg}, {ts}, {te}) in\n{out}"
            );
        }
    }

    #[test]
    fn set_statements_change_planning() {
        let mut s = session_with_rp();
        s.execute("SET enable_mergejoin = off").unwrap();
        s.execute("SET enable_hashjoin = off").unwrap();
        let plan = s
            .explain("SELECT * FROM r a JOIN r b ON a.n = b.n AND a.ts = b.ts AND a.te = b.te")
            .unwrap();
        assert!(plan.contains("NestedLoopJoin"), "{plan}");
        s.execute("SET enable_hashjoin = on").unwrap();
        let plan = s
            .explain("SELECT * FROM r a JOIN r b ON a.n = b.n AND a.ts = b.ts AND a.te = b.te")
            .unwrap();
        assert!(plan.contains("HashJoin"), "{plan}");
        assert!(s.execute("SET enable_time_travel = on").is_err());
    }

    #[test]
    fn not_exists_compiles_to_anti_join() {
        let mut s = session_with_rp();
        let plan = s
            .explain("SELECT * FROM r WHERE NOT EXISTS (SELECT * FROM p WHERE p.ts < r.te AND r.ts < p.te)")
            .unwrap();
        assert!(plan.contains("[Anti]"), "{plan}");
        let out = s
            .query("SELECT * FROM r WHERE NOT EXISTS (SELECT * FROM p WHERE p.ts < r.te AND r.ts < p.te)")
            .unwrap();
        // every reservation overlaps some price period
        assert!(out.is_empty());
    }

    #[test]
    fn exists_compiles_to_semi_join() {
        let mut s = session_with_rp();
        let out = s
            .query(
                "SELECT n FROM r WHERE EXISTS (SELECT * FROM p WHERE p.ts < r.te AND r.ts < p.te)",
            )
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn setop_queries() {
        let mut s = session_with_rp();
        let out = s.query("SELECT n FROM r UNION SELECT n FROM r").unwrap();
        assert_eq!(out.len(), 2); // ann, joe
        let out = s
            .query("SELECT n FROM r EXCEPT SELECT n FROM r WHERE n = 'joe'")
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn order_by_and_limit() {
        let mut s = session_with_rp();
        let out = s
            .query("SELECT n, ts FROM r ORDER BY ts DESC LIMIT 2")
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::str("ann"));
        assert!(out.rows()[0][1].as_int() >= out.rows()[1][1].as_int());
    }

    #[test]
    fn analyzer_errors_are_helpful() {
        let mut s = session_with_rp();
        assert!(s.query("SELECT zzz FROM r").is_err());
        assert!(s.query("SELECT * FROM unknown_table").is_err());
        assert!(s.query("SELECT n, avg(ts) FROM r").is_err()); // n not grouped
        assert!(s
            .query("SELECT ABSORB n FROM r") // last two cols not an interval
            .is_err());
        assert!(s.query("SELECT frobnicate(n) FROM r").is_err());
    }

    #[test]
    fn normalize_using_validates_columns() {
        let mut s = session_with_rp();
        // ts is not a nontemporal attribute
        assert!(s
            .query("SELECT * FROM (r r1 NORMALIZE r r2 USING(ts)) x")
            .is_err());
        assert!(s
            .query("SELECT * FROM (r r1 NORMALIZE r r2 USING(n)) x")
            .is_ok());
    }

    #[test]
    fn select_without_from() {
        let mut s = Session::new();
        let out = s.query("SELECT 1 + 2 x, 'hi' y").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(3));
        assert_eq!(out.rows()[0][1], Value::str("hi"));
    }

    #[test]
    fn cte_shadows_catalog_table() {
        let mut s = session_with_rp();
        let out = s
            .query("WITH r AS (SELECT n FROM r WHERE n = 'joe') SELECT * FROM r")
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::str("joe"));
    }
}
