//! CRC-32C (Castagnoli) — the checksum guarding WAL records and v3 page
//! images. Implemented here (table-driven, no dependencies) because the
//! workspace is offline; the polynomial matches iSCSI/ext4/`crc32c(3)`,
//! so externally written test vectors apply.

/// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32C of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Extend a running CRC-32C with more bytes: `crc32c_append(crc32c(a), b)
/// == crc32c(a ++ b)`. Lets callers checksum framed records without
/// concatenating buffers.
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The canonical check value for CRC-32C (RFC 3720 appendix B.4).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn append_matches_whole_buffer() {
        let data = b"write-ahead logging";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c(a), b), crc32c(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = [0x5au8; 64];
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data;
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base);
            }
        }
    }
}
