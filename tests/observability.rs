//! Observability end to end (ISSUE 10): `EXPLAIN ANALYZE` on the SQL and
//! frame surfaces, the metrics registry behind the server's `.stats`
//! command, span tracing under `SET trace = on`, and the guarantee that
//! instrumentation never changes results.
//!
//! The `EXPLAIN ANALYZE` rendering over a persisted NORMALIZE query is
//! pinned by a golden file (`tests/golden/explain_analyze.txt`) with the
//! non-deterministic `time=…ms` tokens normalized; refresh it with
//! `UPDATE_GOLDENS=1 cargo test --test observability`.

mod common;

use temporal_alignment::core::prelude::*;
use temporal_alignment::prelude::Session;
use temporal_alignment::server::{Client, Response, Server};
use temporal_datasets::{ddisj, deq, drand};

/// A unique scratch directory for one test.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("talign_observability_tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Replace every `time=…ms` token with `time=Xms` so wall-clock noise
/// never reaches the golden file. Everything else in the rendering
/// (estimated rows, actual rows, batches, pages) is deterministic.
fn normalize_times(rendered: &str) -> String {
    let mut out = String::with_capacity(rendered.len());
    let mut rest = rendered;
    while let Some(i) = rest.find("time=") {
        let (head, tail) = rest.split_at(i + "time=".len());
        out.push_str(head);
        let end = tail.find("ms").expect("time= token ends in ms");
        out.push_str("Xms");
        rest = &tail[end + 2..];
    }
    out.push_str(rest);
    out
}

/// Strip per-node annotations, keeping only the indented operator labels:
/// the "tree shape" both EXPLAIN ANALYZE surfaces must agree on.
fn tree_shape(rendered: &str) -> Vec<String> {
    rendered
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| match l.find("  (") {
            Some(i) => l[..i].trim_end().to_string(),
            None => l.trim_end().to_string(),
        })
        .collect()
}

#[test]
fn explain_analyze_over_persisted_normalize_matches_golden() {
    let dir = scratch("golden");
    let db = Database::open(&dir).unwrap();
    let (r, s) = ddisj(24);
    db.register_or_replace("r", &r).unwrap();
    db.register_or_replace("s", &s).unwrap();

    let mut session = Session::scoped(db.clone());
    let query = "SELECT * FROM (r NORMALIZE s USING(id)) x";
    let analyzed = session.explain_analyze(query).unwrap();

    // The analyzed plan must carry real execution counters on every node.
    assert!(
        analyzed.contains("actual rows="),
        "EXPLAIN ANALYZE must report actual rows:\n{analyzed}"
    );
    assert!(
        analyzed.contains("time="),
        "EXPLAIN ANALYZE must report per-operator time:\n{analyzed}"
    );
    assert!(
        analyzed.contains("pages_read="),
        "EXPLAIN ANALYZE over persisted tables must report pages:\n{analyzed}"
    );
    assert!(
        !analyzed.contains("never executed"),
        "every operator in the tree must have run:\n{analyzed}"
    );

    // The frame surface over the same logical query renders the same
    // physical tree with its own (independently collected) counters. The
    // SQL side carries one extra root Project (the `SELECT *` wrapper);
    // below it the trees must be identical.
    let frame = db
        .table("r")
        .unwrap()
        .normalize_using(db.table("s").unwrap(), &["id"]);
    let from_frame = frame.explain_analyze().unwrap();
    let mut sql_shape = tree_shape(&analyzed);
    assert_eq!(sql_shape.first().map(String::as_str), Some("Project"));
    sql_shape.remove(0);
    for line in &mut sql_shape {
        *line = line
            .strip_prefix("  ")
            .expect("children of the root Project are indented")
            .to_string();
    }
    assert_eq!(
        sql_shape,
        tree_shape(&from_frame),
        "SQL and frame EXPLAIN ANALYZE must print identical operator trees:\
         \n-- sql --\n{analyzed}\n-- frame --\n{from_frame}"
    );
    assert!(from_frame.contains("actual rows="));

    // Pin the full rendering (minus wall-clock) against the golden file.
    let rendered = format!("-- EXPLAIN ANALYZE {query}\n{}", normalize_times(&analyzed));
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("explain_analyze.txt");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDENS=1 cargo test --test observability",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "EXPLAIN ANALYZE output drifted from the golden file; \
         run UPDATE_GOLDENS=1 cargo test --test observability if intentional"
    );
}

#[test]
fn instrumentation_never_changes_results() {
    // The same query with tracing + instrumentation on and off must
    // return identical rows in identical order, across all three
    // synthetic workloads of Sec. 7.
    let workloads = [
        ("ddisj", ddisj(64)),
        ("deq", deq(48)),
        ("drand", {
            let (r, _) = drand(64, 7);
            let (_, s) = drand(64, 11);
            (r, s)
        }),
    ];
    for (name, (r, s)) in workloads {
        let mut session = Session::new();
        session.register_temporal("r", &r).unwrap();
        session.register_temporal("s", &s).unwrap();
        let query = "SELECT * FROM (r r1 NORMALIZE r r2 USING()) x";

        session.execute("SET trace = off").unwrap();
        let plain = session.query(query).unwrap();
        session.execute("SET trace = on").unwrap();
        session.execute("SET slow_query_ms = 10000").unwrap();
        let observed = session.query(query).unwrap();
        assert_eq!(
            plain.rows(),
            observed.rows(),
            "{name}: instrumentation changed the result"
        );
        // And EXPLAIN ANALYZE's own execution agrees on the row count.
        let analyzed = session.explain_analyze(query).unwrap();
        let first = analyzed.lines().next().unwrap_or_default();
        assert!(
            first.contains(&format!("actual rows={}", plain.rows().len())),
            "{name}: EXPLAIN ANALYZE root row count must match the query \
             result ({} rows):\n{analyzed}",
            plain.rows().len()
        );
    }
}

#[test]
fn set_trace_records_spans_and_dumps_chrome_trace() {
    let (r, s) = ddisj(32);
    let db = Database::default();
    db.register("r", &r).unwrap();
    db.register("s", &s).unwrap();
    let mut session = Session::scoped(db.clone());

    // No spans while tracing is off (SET explicitly: the session default
    // follows the TEMPORAL_TRACE environment variable).
    session.execute("SET trace = off").unwrap();
    session.query("SELECT * FROM r").unwrap();
    assert!(db.tracer().is_empty(), "trace = off must record nothing");

    session.execute("SET trace = on").unwrap();
    session
        .query("SELECT * FROM (r NORMALIZE s USING(id)) x")
        .unwrap();
    assert!(
        !db.tracer().is_empty(),
        "SET trace = on must record spans for executed queries"
    );
    let spans = db.tracer().spans();
    assert!(
        spans.iter().any(|sp| sp.cat == "query"),
        "trace must contain the query-level span"
    );
    assert!(
        spans.iter().any(|sp| sp.cat == "operator"),
        "trace must contain per-operator spans"
    );

    // The dump is chrome://tracing's JSON array format.
    let json = db.tracer().chrome_trace_json();
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"ph\":\"X\""), "complete events expected");
    assert!(json.contains("\"cat\":\"operator\""));

    db.tracer().clear();
    assert!(db.tracer().is_empty());
}

#[test]
fn server_stats_reports_ratios_and_latency_percentiles() {
    // A live connection to a *persisted* database: after a handful of
    // statements, `.stats` must report the WAL group-commit ratio, the
    // buffer-pool hit rate, and statement-latency percentiles.
    let dir = scratch("server-stats");
    let db = Database::open(&dir).unwrap();
    let handle = Server::bind(db, "127.0.0.1:0").expect("bind").spawn();
    let mut c = Client::connect(handle.addr()).expect("connect");

    assert_eq!(
        c.execute("CREATE TABLE t (name str, ts int, te int)")
            .unwrap(),
        Response::Ok
    );
    for i in 0..4 {
        assert_eq!(
            c.execute(&format!("INSERT INTO t VALUES ('row{i}', {i}, {})", i + 2))
                .unwrap(),
            Response::Affected(1)
        );
    }
    match c.execute("SELECT name FROM t ORDER BY name").unwrap() {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 4),
        other => panic!("expected rows, got {other:?}"),
    }

    let stats = match c.execute(".stats").unwrap() {
        Response::Rows { columns, rows } => {
            assert_eq!(columns, vec!["name", "value"]);
            rows.into_iter()
                .map(|r| {
                    (
                        r[0].clone().unwrap_or_default(),
                        r[1].clone().unwrap_or_default(),
                    )
                })
                .collect::<std::collections::BTreeMap<_, _>>()
        }
        other => panic!("expected stats rows, got {other:?}"),
    };

    let get = |k: &str| {
        stats
            .get(k)
            .unwrap_or_else(|| panic!("missing .stats row {k:?} in {stats:#?}"))
    };
    assert_eq!(get("active_sessions"), "1");
    assert!(get("server.connections").parse::<u64>().unwrap() >= 1);
    assert!(get("server.statements").parse::<u64>().unwrap() >= 6);
    assert!(get("session.statements").parse::<u64>().unwrap() >= 6);
    // Persisted database ⇒ WAL and buffer-pool figures are present.
    // fsyncs per commit: > 0 once commits have happened; can exceed 1
    // when DDL or log-header syncs outnumber commits, so only the lower
    // bound is pinned.
    let ratio: f64 = get("wal.group_commit_ratio").parse().unwrap();
    assert!(
        ratio.is_finite() && ratio > 0.0,
        "commits have happened, so syncs/commits > 0 (got {ratio})"
    );
    let hit_rate: f64 = get("pool.hit_rate").parse().unwrap();
    assert!((0.0..=1.0).contains(&hit_rate));
    assert!(get("wal.commits").parse::<u64>().unwrap() >= 5);
    // Statement latencies have been recorded and the percentiles are
    // real bucket bounds (microseconds), ordered.
    assert!(get("session.statement_us.count").parse::<u64>().unwrap() >= 6);
    let p50: u64 = get("session.statement_us.p50").parse().unwrap();
    let p99: u64 = get("session.statement_us.p99").parse().unwrap();
    assert!(
        p50 <= p99,
        "percentiles must be monotone: p50={p50} p99={p99}"
    );

    // Unknown dot-commands fail in-band without killing the connection.
    match c.execute(".nope").unwrap() {
        Response::Error(msg) => assert!(msg.contains("unknown server command")),
        other => panic!("expected error, got {other:?}"),
    }
    assert!(matches!(
        c.execute("SELECT name FROM t").unwrap(),
        Response::Rows { .. }
    ));
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_snapshot_diff_isolates_an_interval() {
    let (r, s) = ddisj(16);
    let db = Database::default();
    db.register("r", &r).unwrap();
    db.register("s", &s).unwrap();
    let mut session = Session::scoped(db.clone());
    session.query("SELECT * FROM r").unwrap();

    let before = db.metrics_snapshot();
    for _ in 0..5 {
        session
            .query("SELECT * FROM (r NORMALIZE s USING(id)) x")
            .unwrap();
    }
    let after = db.metrics_snapshot();
    let delta = after.diff(&before);

    assert_eq!(delta.counters.get("session.statements"), Some(&5));
    let hist = &delta.histograms["session.statement_us"];
    assert_eq!(hist.count, 5, "diff histogram counts only the interval");
    assert!(hist.p50.is_some() && hist.p99.is_some());
    // The rendering is one `name value` line per metric.
    let rendered = delta.render();
    assert!(rendered.contains("session.statements 5"), "{rendered}");
    assert!(
        rendered.contains("session.statement_us count=5"),
        "{rendered}"
    );
}
