//! Fig. 16: `align` vs `sql+normalize` — the cost of normalizing against
//! the intermediate join result, on (a) Incumben and (b) the random
//! dataset with uniformly distributed start points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temporal_bench::{run_o3, Approach};
use temporal_datasets::{incumben, prefix, random_like_incumben, IncumbenSpec};
use temporal_engine::prelude::*;

fn bench(c: &mut Criterion) {
    // Paper-faithful planner: the default config would auto-select the
    // sweep interval join on overlap patterns and change the figure.
    let planner = Planner::new(PlannerConfig::paper());

    // (a) O3 on Incumben
    let data = incumben(IncumbenSpec::default());
    let mut group = c.benchmark_group("fig16a_o3_incumben");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000] {
        let r = prefix(&data, n);
        for a in [Approach::Align, Approach::SqlNormalize] {
            group.bench_with_input(BenchmarkId::new(a.label(), n), &r, |b, r| {
                b.iter(|| run_o3(a, r, r, &planner))
            });
        }
    }
    group.finish();

    // (b) O3 on the random dataset
    let mut group = c.benchmark_group("fig16b_o3_random");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000] {
        let r = random_like_incumben(n, (n / 12).max(4), 433);
        for a in [Approach::Align, Approach::SqlNormalize] {
            group.bench_with_input(BenchmarkId::new(a.label(), n), &r, |b, r| {
                b.iter(|| run_o3(a, r, r, &planner))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
