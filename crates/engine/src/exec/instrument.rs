//! Per-operator instrumentation: the machinery behind `EXPLAIN ANALYZE`.
//!
//! When an [`ExecutionState`] is built with
//! [`ExecutionState::with_instrumentation`], the plan builder wraps every
//! executor node in an [`InstrumentedExec`] that times each pull and
//! counts rows/batches into a shared [`OperatorStats`], keyed by the
//! *plan node's address* in the [`Instrumentation`] registry. Parallel
//! partitions of one plan node share one `OperatorStats` — their atomics
//! aggregate, so a scan split into four morsels reports the total rows
//! and the summed per-partition time (like summing parallel workers).
//!
//! Storage scans additionally carry a per-node page ledger: the plan
//! builder hands the scan its own `OperatorStats`, and every page decode
//! or prune lands there as well as in the query-wide
//! [`crate::exec::ExecStats`]. That is what lets `EXPLAIN ANALYZE` show
//! `pages=12/37` on the exact scan that did the pruning.
//!
//! When instrumentation is off (the default), no wrapper is inserted
//! anywhere — the executor runs the exact same code it ran before this
//! module existed, so the overhead of *having* the feature is zero.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::batch::RowBatch;
use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::schema::Schema;
use crate::tuple::Row;

/// Runtime counters of one plan node, shared by every executor instance
/// built from it (serial node, or all ranged partitions). All relaxed
/// atomics — diagnostic only.
#[derive(Debug, Default)]
pub struct OperatorStats {
    /// Rows this node emitted (summed over partitions).
    pub rows: AtomicU64,
    /// Batches this node emitted via the batch protocol.
    pub batches: AtomicU64,
    /// `next`/`next_batch` invocations.
    pub calls: AtomicU64,
    /// Wall time spent inside this node's pulls, nanoseconds. Inclusive
    /// of children (as in PostgreSQL's `actual time`); parallel
    /// partitions sum, so this can exceed query wall time.
    pub nanos: AtomicU64,
    /// Heap pages this node pinned and decoded (storage scans only).
    pub pages_read: AtomicU64,
    /// Heap pages pruned before decode at this node (storage scans only).
    pub pages_skipped: AtomicU64,
    /// Ranged partitions built from this node (> 0 only under exchange).
    pub partitions: AtomicU64,
}

impl OperatorStats {
    pub fn note_page_read(&self) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_pages_skipped(&self, n: u64) {
        self.pages_skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Wall time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Wall time in whole microseconds (the trace-span unit).
    pub fn micros(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed) / 1_000
    }
}

/// The per-query registry mapping plan node identity (its address, stable
/// for the lifetime of the plan borrow that execution holds) to that
/// node's [`OperatorStats`].
#[derive(Debug, Default)]
pub struct Instrumentation {
    ops: Mutex<HashMap<usize, Arc<OperatorStats>>>,
}

impl Instrumentation {
    /// The stats slot of plan node `key`, created on first use.
    pub fn op(&self, key: usize) -> Arc<OperatorStats> {
        let mut map = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_default().clone()
    }

    /// The stats slot of plan node `key`, if any executor touched it.
    pub fn get(&self, key: usize) -> Option<Arc<OperatorStats>> {
        let map = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&key).cloned()
    }
}

/// Transparent [`ExecNode`] wrapper that meters its inner node (see
/// module docs). Forwards each protocol verbatim, so the wrapped node
/// still sees exactly one drive protocol.
pub struct InstrumentedExec {
    inner: BoxedExec,
    stats: Arc<OperatorStats>,
}

impl InstrumentedExec {
    pub fn new(inner: BoxedExec, stats: Arc<OperatorStats>) -> Self {
        InstrumentedExec { inner, stats }
    }
}

impl ExecNode for InstrumentedExec {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        let t0 = Instant::now();
        let out = self.inner.next(state);
        self.stats
            .nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        if let Ok(Some(_)) = &out {
            self.stats.rows.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        let t0 = Instant::now();
        let out = self.inner.next_batch(state);
        self.stats
            .nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        if let Ok(Some(batch)) = &out {
            self.stats
                .rows
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int_rel;
    use crate::exec::{collect, collect_rowwise, SeqScanExec};
    use std::sync::Arc as StdArc;

    #[test]
    fn wrapper_counts_rows_and_batches_without_changing_output() {
        let rel = int_rel("n", &(0..3000).collect::<Vec<i64>>());
        let ins = Instrumentation::default();
        let stats = ins.op(1);
        let plain = collect(
            Box::new(SeqScanExec::new(StdArc::new(rel.clone()))),
            &ExecutionState::default(),
        )
        .unwrap();
        let wrapped = collect(
            Box::new(InstrumentedExec::new(
                Box::new(SeqScanExec::new(StdArc::new(rel.clone()))),
                stats.clone(),
            )),
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(plain.rows(), wrapped.rows());
        assert_eq!(stats.rows.load(Ordering::Relaxed), 3000);
        assert!(stats.batches.load(Ordering::Relaxed) >= 2);
        assert!(stats.calls.load(Ordering::Relaxed) >= 3);

        // Row protocol counts rows too (no batches).
        let stats2 = ins.op(2);
        let row_out = collect_rowwise(
            Box::new(InstrumentedExec::new(
                Box::new(SeqScanExec::new(StdArc::new(rel))),
                stats2.clone(),
            )),
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(row_out.rows(), plain.rows());
        assert_eq!(stats2.rows.load(Ordering::Relaxed), 3000);
        assert_eq!(stats2.batches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn registry_shares_one_slot_per_key() {
        let ins = Instrumentation::default();
        let a = ins.op(7);
        let b = ins.op(7);
        a.rows.fetch_add(5, Ordering::Relaxed);
        assert_eq!(b.rows.load(Ordering::Relaxed), 5);
        assert!(ins.get(8).is_none());
        assert!(ins.get(7).is_some());
    }
}
