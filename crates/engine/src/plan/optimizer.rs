//! The planner/optimizer: logical plan → physical plan.
//!
//! The centrepiece is join-method selection. As in PostgreSQL, every
//! applicable algorithm is costed and the cheapest wins; disabled methods
//! (`enable_nestloop` / `enable_hashjoin` / `enable_mergejoin`) receive the
//! `DISABLE_COST` penalty instead of being removed, so a plan always
//! exists. The paper's Fig. 13 experiment is a direct sweep over these
//! switches.

use std::collections::HashMap;
use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::{EngineError, EngineResult};
use crate::exec::ExecutionState;
use crate::expr::{col, detect_overlap_pattern, fold, split_join_condition, CmpOp, Expr, SortKey};
use crate::plan::cost::{CostModel, DISABLE_COST};
use crate::plan::{JoinType, LogicalPlan, PhysicalPlan};
use crate::relation::Relation;
use crate::storage::ZoneBounds;
use crate::value::Value;

/// Planner switches and cost constants (PostgreSQL GUC equivalents).
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    pub enable_nestloop: bool,
    pub enable_hashjoin: bool,
    pub enable_mergejoin: bool,
    /// Force-allow the sweep-based interval overlap join — the paper's
    /// future-work extension (Sec. 8) — as a join candidate whenever it is
    /// applicable. Off by default; [`PlannerConfig::paper`] keeps it off
    /// for the paper-faithful benchmark runs.
    pub enable_intervaljoin: bool,
    /// Heuristic auto-enablement of the sweep interval join: when the join
    /// condition is a pure interval-overlap pattern *without* hashable equi
    /// keys (the shape the temporal primitives' group-construction join
    /// takes when θ carries no equality), the sweep candidate is costed
    /// against the nested loop and the cheaper plan wins. On by default —
    /// no manual `SET enable_intervaljoin = on` needed; switch off (or use
    /// [`PlannerConfig::paper`]) to reproduce the paper's PostgreSQL
    /// behaviour, which has no such operator.
    pub enable_intervaljoin_auto: bool,
    /// Logical rewrites (constant folding, filter pushdown across
    /// extension boundaries, projection pruning — [`crate::plan::rewrite`])
    /// applied before costing. On by default; switchable so benchmarks can
    /// isolate the effect of cross-operator optimization.
    pub enable_rewrites: bool,
    /// Zone-map scan pruning: storage scans under a filter with temporal
    /// (or first-key-column) range conjuncts skip pages whose header
    /// min/max synopsis cannot match. On by default; the
    /// `TEMPORAL_ZONEMAPS` environment variable (0/false/off) flips the
    /// default, mirroring `TEMPORAL_THREADS` (how CI runs the fallback
    /// suite).
    pub enable_zonemaps: bool,
    /// Interval-index access path: `AS OF` timeslices (and any filter with
    /// `ts <=` / `te >` bounds) may probe the table's persistent interval
    /// index instead of sweeping zone maps, when the cost model prefers it.
    /// On by default; `TEMPORAL_INTERVAL_INDEX` flips the default.
    pub enable_interval_index: bool,
    /// Worker threads for parallel execution (the `threads` GUC). 1 =
    /// serial. The default comes from the `TEMPORAL_THREADS` environment
    /// variable when set (how CI runs the whole suite at `threads = 4`),
    /// else 1. Parallel operators are exact: any `threads` value produces
    /// row-identical output.
    pub threads: usize,
    /// Minimum input rows before an operator takes its parallel path (the
    /// `parallel_min_rows` GUC) — spawn overhead dwarfs the work below
    /// this. Tests lower it to 1 to exercise parallel code on small data.
    pub parallel_min_rows: usize,
    /// Span tracing (`SET trace = on`): statements run instrumented and
    /// the session layer records query/plan/operator spans into the
    /// database's ring-buffer tracer (dumpable as chrome-trace JSON via
    /// tsql `.trace <file>`). Off by default; the `TEMPORAL_TRACE`
    /// environment variable (1/true/on) flips the default — how CI runs
    /// the whole suite traced.
    pub trace: bool,
    /// Slow-statement logging threshold in milliseconds (`SET
    /// slow_query_ms = N`). 0 — the default — disables it; above 0 every
    /// statement runs instrumented and those at or over the threshold log
    /// their text and per-operator breakdown to stderr.
    pub slow_query_ms: usize,
    pub cost_model: CostModel,
}

/// Default worker count: `TEMPORAL_THREADS` env var when set, else 1.
fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("TEMPORAL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(1, |n| n.clamp(1, 256))
    })
}

/// An on-by-default boolean env override: only `0`, `false` or `off`
/// (case-insensitive) disable the feature.
fn env_flag(var: &str) -> bool {
    !matches!(
        std::env::var(var).map(|v| v.trim().to_ascii_lowercase()),
        Ok(ref v) if v == "0" || v == "false" || v == "off"
    )
}

/// Default zone-map pruning state (`TEMPORAL_ZONEMAPS`, default on).
fn default_zonemaps() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| env_flag("TEMPORAL_ZONEMAPS"))
}

/// Default interval-index state (`TEMPORAL_INTERVAL_INDEX`, default on).
fn default_interval_index() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| env_flag("TEMPORAL_INTERVAL_INDEX"))
}

/// Default tracing state (`TEMPORAL_TRACE`, default off — the inverse
/// polarity of [`env_flag`]: only `1`, `true` or `on` enable it).
fn default_trace() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| {
        matches!(
            std::env::var("TEMPORAL_TRACE").map(|v| v.trim().to_ascii_lowercase()),
            Ok(ref v) if v == "1" || v == "true" || v == "on"
        )
    })
}

/// Default parallel threshold (rows).
pub const DEFAULT_PARALLEL_MIN_ROWS: usize = 256;

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            enable_nestloop: true,
            enable_hashjoin: true,
            enable_mergejoin: true,
            enable_intervaljoin: false,
            enable_intervaljoin_auto: true,
            enable_rewrites: true,
            enable_zonemaps: default_zonemaps(),
            enable_interval_index: default_interval_index(),
            threads: default_threads(),
            parallel_min_rows: DEFAULT_PARALLEL_MIN_ROWS,
            trace: default_trace(),
            slow_query_ms: 0,
            cost_model: CostModel::default(),
        }
    }
}

impl PlannerConfig {
    /// The paper-faithful configuration: exactly PostgreSQL 9.0's join
    /// methods — the sweep interval join (a Sec. 8 future-work extension)
    /// is neither forced nor auto-selected. The `reproduce` binary runs
    /// every figure with this configuration so the curves keep the paper's
    /// shape, and the per-setting presets below all build on it.
    pub fn paper() -> Self {
        PlannerConfig {
            enable_intervaljoin_auto: false,
            ..Default::default()
        }
    }

    /// The paper's setting (a): all of PostgreSQL's join methods enabled
    /// (paper-faithful, so the sweep extension is not auto-selected).
    pub fn all_enabled() -> Self {
        PlannerConfig::paper()
    }

    /// The paper's setting (b): `SET enable_mergejoin = false`.
    pub fn no_merge() -> Self {
        PlannerConfig {
            enable_mergejoin: false,
            ..PlannerConfig::paper()
        }
    }

    /// The paper's setting (c): merge and hash joins disabled.
    pub fn nestloop_only() -> Self {
        PlannerConfig {
            enable_mergejoin: false,
            enable_hashjoin: false,
            ..PlannerConfig::paper()
        }
    }

    /// Set a switch by its PostgreSQL GUC name.
    pub fn set(&mut self, name: &str, value: bool) -> EngineResult<()> {
        match name {
            "enable_nestloop" => self.enable_nestloop = value,
            "enable_hashjoin" => self.enable_hashjoin = value,
            "enable_mergejoin" => self.enable_mergejoin = value,
            "enable_intervaljoin" => self.enable_intervaljoin = value,
            "enable_intervaljoin_auto" => self.enable_intervaljoin_auto = value,
            "enable_rewrites" => self.enable_rewrites = value,
            "enable_zonemaps" => self.enable_zonemaps = value,
            "enable_interval_index" => self.enable_interval_index = value,
            "trace" => self.trace = value,
            other => {
                return Err(EngineError::Unsupported(format!(
                    "unknown planner setting '{other}'"
                )))
            }
        }
        Ok(())
    }

    /// Set an integer-valued setting by its GUC name (`SET threads = 4`).
    pub fn set_int(&mut self, name: &str, value: i64) -> EngineResult<()> {
        let positive = |v: i64| -> EngineResult<usize> {
            usize::try_from(v).ok().filter(|&v| v >= 1).ok_or_else(|| {
                EngineError::Unsupported(format!("setting '{name}' requires a value ≥ 1"))
            })
        };
        match name {
            "threads" => self.threads = positive(value)?.min(256),
            "parallel_min_rows" => self.parallel_min_rows = positive(value)?,
            // 0 is meaningful here: it turns slow-statement logging off.
            "slow_query_ms" => {
                self.slow_query_ms = usize::try_from(value).map_err(|_| {
                    EngineError::Unsupported(format!("setting '{name}' requires a value ≥ 0"))
                })?
            }
            other => {
                return Err(EngineError::Unsupported(format!(
                    "unknown integer planner setting '{other}'"
                )))
            }
        }
        Ok(())
    }
}

/// Plans logical trees into executable physical trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner {
    pub config: PlannerConfig,
}

impl Planner {
    pub fn new(config: PlannerConfig) -> Self {
        Planner { config }
    }

    /// Plan a logical tree, resolving table scans against `catalog`. The
    /// logical rewrites (constant folding, filter pushdown, projection
    /// pruning) run first unless `enable_rewrites` is off.
    pub fn plan(&self, lp: &LogicalPlan, catalog: &Catalog) -> EngineResult<PhysicalPlan> {
        // Shared extension nodes (a spool referenced from several plan
        // occurrences) are planned once and the physical subtree reused.
        let mut memo = HashMap::new();
        if self.config.enable_rewrites {
            self.plan_inner(&crate::plan::rewrite::optimize(lp), catalog, &mut memo)
        } else {
            self.plan_inner(lp, catalog, &mut memo)
        }
    }

    fn plan_inner(
        &self,
        lp: &LogicalPlan,
        catalog: &Catalog,
        memo: &mut HashMap<usize, PhysicalPlan>,
    ) -> EngineResult<PhysicalPlan> {
        Ok(match lp {
            LogicalPlan::TableScan { name, schema } => {
                let source = catalog.source(name)?;
                if source.schema().len() != schema.len() {
                    return Err(EngineError::SchemaMismatch(format!(
                        "table '{name}' has {} columns, plan expected {}",
                        source.schema().len(),
                        schema.len()
                    )));
                }
                match source {
                    crate::catalog::TableSource::Mem(rel) => PhysicalPlan::SeqScan {
                        rel,
                        label: name.clone(),
                    },
                    crate::catalog::TableSource::Stored(table) => PhysicalPlan::StorageScan {
                        table,
                        label: name.clone(),
                        bounds: None,
                    },
                }
            }
            LogicalPlan::InlineScan { rel } => PhysicalPlan::SeqScan {
                rel: rel.clone(),
                label: "inline".to_string(),
            },
            LogicalPlan::Filter { input, predicate } => {
                let planned = self.plan_inner(input, catalog, memo)?;
                let predicate = fold(predicate);
                // Filter-over-storage-scan is the access-path hook: the
                // pushdown rewrite has already sunk predicates to their
                // scans, so temporal range conjuncts recognized here can
                // prune pages. The filter always stays on top — pruning
                // only ever skips pages that cannot contain a match.
                let planned = self.choose_access_path(planned, &predicate);
                PhysicalPlan::Filter {
                    input: Box::new(planned),
                    predicate,
                }
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => PhysicalPlan::Project {
                input: Box::new(self.plan_inner(input, catalog, memo)?),
                exprs: exprs.clone(),
                schema: schema.clone(),
            },
            LogicalPlan::Aggregate {
                input,
                group,
                aggs,
                schema,
            } => PhysicalPlan::HashAggregate {
                input: Box::new(self.plan_inner(input, catalog, memo)?),
                group: group.clone(),
                aggs: aggs.clone(),
                schema: schema.clone(),
            },
            LogicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
                input: Box::new(self.plan_inner(input, catalog, memo)?),
                keys: keys.clone(),
            },
            LogicalPlan::Distinct { input } => PhysicalPlan::Distinct {
                input: Box::new(self.plan_inner(input, catalog, memo)?),
            },
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => {
                let l = self.plan_inner(left, catalog, memo)?;
                let r = self.plan_inner(right, catalog, memo)?;
                // Fold constants; a condition folded to TRUE disappears
                // (cross/overlap joins written as `… AND 1 = 1` in SQL).
                let condition = match condition.as_ref().map(fold) {
                    Some(Expr::Lit(Value::Bool(true))) => None,
                    other => other,
                };
                self.plan_join(l, r, *join_type, condition)?
            }
            LogicalPlan::SetOp { kind, left, right } => PhysicalPlan::HashSetOp {
                kind: *kind,
                left: Box::new(self.plan_inner(left, catalog, memo)?),
                right: Box::new(self.plan_inner(right, catalog, memo)?),
            },
            LogicalPlan::Limit { input, n } => PhysicalPlan::Limit {
                input: Box::new(self.plan_inner(input, catalog, memo)?),
                n: *n,
            },
            LogicalPlan::Extension { node } => {
                let key = Arc::as_ptr(node) as *const u8 as usize;
                if let Some(planned) = memo.get(&key) {
                    return Ok(planned.clone());
                }
                let mut children = Vec::new();
                for i in node.inputs() {
                    children.push(self.plan_inner(i, catalog, memo)?);
                }
                let planned = PhysicalPlan::Extension {
                    node: node.clone(),
                    children,
                };
                memo.insert(key, planned.clone());
                planned
            }
        })
    }

    /// Cost-based access-path selection for a storage scan under a filter.
    /// When the (folded, pushed-down) predicate carries range conjuncts
    /// over the table's temporal columns (or its first key column), three
    /// candidates compete: the full scan, a zone-map pruned scan, and an
    /// interval-index probe. The chosen path only narrows the *page set*;
    /// the caller keeps the full filter on top, so an over-approximate
    /// page set can never change results.
    fn choose_access_path(&self, input: PhysicalPlan, predicate: &Expr) -> PhysicalPlan {
        if !self.config.enable_zonemaps && !self.config.enable_interval_index {
            return input;
        }
        let PhysicalPlan::StorageScan {
            table,
            label,
            bounds: None,
        } = &input
        else {
            return input;
        };
        let Some((tsi, tei)) = table.temporal_cols() else {
            return input;
        };
        let bounds = extract_zone_bounds(predicate, tsi, tei, table.key_col());
        if bounds.is_empty() {
            return input;
        }
        let model = &self.config.cost_model;
        let rows = table.row_count() as f64;
        let pages = (table.page_count() as f64).max(1.0);
        let sel = 0.33f64.powi(bounds.bound_count() as i32);
        let mut best_cost = model.full_scan_cost(rows, pages);
        let mut best = None;
        if self.config.enable_zonemaps {
            let cost = model.zone_scan_cost(rows, pages, sel);
            if cost < best_cost {
                best_cost = cost;
                best = Some(false);
            }
        }
        // The index serves probes with an upper start / lower end bound;
        // ties go to the index (it touches index pages, not every header).
        if self.config.enable_interval_index && (bounds.ts_le.is_some() || bounds.te_gt.is_some()) {
            if let Some(index) = table.index() {
                let levels = index.levels().unwrap_or(1) as f64;
                let cost = model.index_scan_cost(rows, pages, levels, sel);
                if cost <= best_cost {
                    best = Some(true);
                }
            }
        }
        match best {
            None => input,
            Some(false) => PhysicalPlan::StorageScan {
                table: table.clone(),
                label: label.clone(),
                bounds: Some(bounds),
            },
            Some(true) => PhysicalPlan::IndexScan {
                table: table.clone(),
                label: label.clone(),
                bounds,
            },
        }
    }

    /// Plan and execute in one step: one [`ExecutionState`] is created
    /// from the planner's GUC snapshot and drives the whole execution —
    /// the single entry point for running a plan.
    pub fn run(&self, lp: &LogicalPlan, catalog: &Catalog) -> EngineResult<Relation> {
        let state = ExecutionState::new(self.config);
        self.plan(lp, catalog)?.collect(&state)
    }

    /// Cost-based join algorithm selection.
    fn plan_join(
        &self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        join_type: JoinType,
        condition: Option<Expr>,
    ) -> EngineResult<PhysicalPlan> {
        let model = &self.config.cost_model;
        let left_width = left.schema().len();
        let parts = split_join_condition(condition.as_ref(), left_width);

        let mut candidates: Vec<(f64, PhysicalPlan)> = Vec::new();

        // Nested loop: always applicable.
        {
            let plan = PhysicalPlan::NestedLoopJoin {
                left: Box::new(left.clone()),
                right: Box::new(right.clone()),
                join_type,
                condition: condition.clone(),
            };
            let mut cost = plan.stats(model).cost;
            if !self.config.enable_nestloop {
                cost += DISABLE_COST;
            }
            candidates.push((cost, plan));
        }

        if !parts.equi_keys.is_empty() {
            // Hash join: equi keys, any join type.
            let plan = PhysicalPlan::HashJoin {
                left: Box::new(left.clone()),
                right: Box::new(right.clone()),
                join_type,
                keys: parts.equi_keys.clone(),
                residual: parts.residual.clone(),
            };
            let mut cost = plan.stats(model).cost;
            if !self.config.enable_hashjoin {
                cost += DISABLE_COST;
            }
            candidates.push((cost, plan));

            // Merge join: equi keys; Inner/Left/Full only (Right would need
            // an output-reordering projection; hash/NL cover it).
            if matches!(join_type, JoinType::Inner | JoinType::Left | JoinType::Full) {
                let lkeys: Vec<SortKey> = parts
                    .equi_keys
                    .iter()
                    .map(|&(l, _)| SortKey::asc(col(l)))
                    .collect();
                let rkeys: Vec<SortKey> = parts
                    .equi_keys
                    .iter()
                    .map(|&(_, r)| SortKey::asc(col(r)))
                    .collect();
                let plan = PhysicalPlan::MergeJoin {
                    left: Box::new(PhysicalPlan::Sort {
                        input: Box::new(left.clone()),
                        keys: lkeys,
                    }),
                    right: Box::new(PhysicalPlan::Sort {
                        input: Box::new(right.clone()),
                        keys: rkeys,
                    }),
                    join_type,
                    keys: parts.equi_keys.clone(),
                    residual: parts.residual.clone(),
                };
                let mut cost = plan.stats(model).cost;
                if !self.config.enable_mergejoin {
                    cost += DISABLE_COST;
                }
                candidates.push((cost, plan));
            }
        }

        // Interval sweep join: considered when the condition is an overlap
        // pattern without hashable keys and the join is Inner/Left — either
        // forced (`enable_intervaljoin`) or, by default, auto-detected
        // (`enable_intervaljoin_auto`) and left to compete on cost with
        // the nested loop.
        if (self.config.enable_intervaljoin || self.config.enable_intervaljoin_auto)
            && parts.equi_keys.is_empty()
            && matches!(join_type, JoinType::Inner | JoinType::Left)
        {
            if let Some(p) = detect_overlap_pattern(condition.as_ref(), left_width) {
                let plan = PhysicalPlan::IntervalJoin {
                    left: Box::new(left.clone()),
                    right: Box::new(right.clone()),
                    join_type,
                    endpoints: (p.l_ts, p.l_te, p.r_ts, p.r_te),
                    residual: p.residual,
                };
                let cost = plan.stats(model).cost;
                candidates.push((cost, plan));
            }
        }

        let best = candidates
            .into_iter()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least the nested-loop candidate exists");
        Ok(best.1)
    }
}

/// Extract page-pruning [`ZoneBounds`] from the range conjuncts of a
/// (folded) predicate: comparisons between the table's temporal columns
/// (`ts_col`, `te_col`) or its zone key column and integer literals, plus
/// non-negated `BETWEEN`. Conjuncts that don't fit contribute nothing —
/// the bounds are an over-approximation of the predicate by construction,
/// and the caller re-applies the full predicate above the pruned scan.
pub fn extract_zone_bounds(
    predicate: &Expr,
    ts_col: usize,
    te_col: usize,
    key_col: Option<usize>,
) -> ZoneBounds {
    let mut bounds = ZoneBounds::default();
    for conj in predicate.conjuncts() {
        match conj {
            Expr::Cmp(op, l, r) => {
                let (c, op, v) = match (l.as_ref(), r.as_ref()) {
                    (Expr::Col(c), Expr::Lit(Value::Int(v))) => (*c, *op, *v),
                    (Expr::Lit(Value::Int(v)), Expr::Col(c)) => (*c, op.swapped(), *v),
                    _ => continue,
                };
                apply_bound(&mut bounds, c, op, v, ts_col, te_col, key_col);
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let (Expr::Col(c), Expr::Lit(Value::Int(lo)), Expr::Lit(Value::Int(hi))) =
                    (expr.as_ref(), low.as_ref(), high.as_ref())
                {
                    apply_bound(&mut bounds, *c, CmpOp::Ge, *lo, ts_col, te_col, key_col);
                    apply_bound(&mut bounds, *c, CmpOp::Le, *hi, ts_col, te_col, key_col);
                }
            }
            _ => {}
        }
    }
    bounds
}

/// Fold one `col op literal` conjunct into `bounds`, tightening any bound
/// already present. Strict comparisons shift by one (integer domain), with
/// saturation at the i64 edges keeping the bound conservative.
fn apply_bound(
    bounds: &mut ZoneBounds,
    c: usize,
    op: CmpOp,
    v: i64,
    ts_col: usize,
    te_col: usize,
    key_col: Option<usize>,
) {
    fn tighten_min(slot: &mut Option<i64>, v: i64) {
        *slot = Some(slot.map_or(v, |s| s.min(v)));
    }
    fn tighten_max(slot: &mut Option<i64>, v: i64) {
        *slot = Some(slot.map_or(v, |s| s.max(v)));
    }
    if c == ts_col {
        match op {
            CmpOp::Le => tighten_min(&mut bounds.ts_le, v),
            CmpOp::Lt => tighten_min(&mut bounds.ts_le, v.saturating_sub(1)),
            CmpOp::Ge => tighten_max(&mut bounds.ts_ge, v),
            CmpOp::Gt => tighten_max(&mut bounds.ts_ge, v.saturating_add(1)),
            CmpOp::Eq => {
                tighten_min(&mut bounds.ts_le, v);
                tighten_max(&mut bounds.ts_ge, v);
            }
            CmpOp::Ne => {}
        }
    } else if c == te_col {
        match op {
            CmpOp::Gt => tighten_max(&mut bounds.te_gt, v),
            CmpOp::Ge => tighten_max(&mut bounds.te_gt, v.saturating_sub(1)),
            CmpOp::Lt => tighten_min(&mut bounds.te_lt, v),
            CmpOp::Le => tighten_min(&mut bounds.te_lt, v.saturating_add(1)),
            CmpOp::Eq => {
                tighten_max(&mut bounds.te_gt, v.saturating_sub(1));
                tighten_min(&mut bounds.te_lt, v.saturating_add(1));
            }
            CmpOp::Ne => {}
        }
    } else if Some(c) == key_col {
        match op {
            CmpOp::Le => tighten_min(&mut bounds.key_le, v),
            CmpOp::Lt => tighten_min(&mut bounds.key_le, v.saturating_sub(1)),
            CmpOp::Ge => tighten_max(&mut bounds.key_ge, v),
            CmpOp::Gt => tighten_max(&mut bounds.key_ge, v.saturating_add(1)),
            CmpOp::Eq => {
                tighten_min(&mut bounds.key_le, v);
                tighten_max(&mut bounds.key_ge, v);
            }
            CmpOp::Ne => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType, Schema};
    use crate::value::Value;

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        Relation::from_values(
            schema,
            (0..n)
                .map(|i| vec![Value::Int(i % 10), Value::Int(i)])
                .collect(),
        )
        .unwrap()
    }

    fn join_plan(config: PlannerConfig, cond: Expr, join_type: JoinType) -> PhysicalPlan {
        let l = LogicalPlan::inline_scan(rel(1000));
        let r = LogicalPlan::inline_scan(rel(1000));
        let lp = l.join(r, join_type, Some(cond));
        Planner::new(config).plan(&lp, &Catalog::new()).unwrap()
    }

    #[test]
    fn equi_join_avoids_nested_loop_when_enabled() {
        let p = join_plan(
            PlannerConfig::all_enabled(),
            col(0).eq(col(2)),
            JoinType::Inner,
        );
        let alg = p.root_join_algorithm().unwrap();
        assert_ne!(alg, "nestloop", "plan was: {}", p.explain());
    }

    #[test]
    fn disabling_methods_walks_down_the_preference_list() {
        // (b) merge disabled → hash; (c) merge+hash disabled → nestloop.
        let p = join_plan(
            PlannerConfig::no_merge(),
            col(0).eq(col(2)),
            JoinType::Inner,
        );
        assert_ne!(p.root_join_algorithm().unwrap(), "merge");
        let p = join_plan(
            PlannerConfig::nestloop_only(),
            col(0).eq(col(2)),
            JoinType::Inner,
        );
        assert_eq!(p.root_join_algorithm().unwrap(), "nestloop");
    }

    #[test]
    fn non_equi_condition_forces_nested_loop() {
        let p = join_plan(
            PlannerConfig::all_enabled(),
            col(1).lt(col(3)),
            JoinType::Inner,
        );
        assert_eq!(p.root_join_algorithm().unwrap(), "nestloop");
    }

    #[test]
    fn overlap_pattern_auto_enables_interval_join() {
        // A pure overlap condition (l.ts < r.te ∧ r.ts < l.te, no equi
        // keys): the default config auto-considers the sweep join and its
        // cost wins; the paper-faithful config keeps the nested loop.
        let overlap = col(0).lt(col(3)).and(col(2).lt(col(1)));
        let p = join_plan(PlannerConfig::default(), overlap.clone(), JoinType::Inner);
        assert_eq!(p.root_join_algorithm().unwrap(), "interval");
        let p = join_plan(PlannerConfig::paper(), overlap, JoinType::Inner);
        assert_eq!(p.root_join_algorithm().unwrap(), "nestloop");
    }

    #[test]
    fn merge_not_considered_for_right_joins() {
        let mut config = PlannerConfig::all_enabled();
        config.enable_hashjoin = false;
        config.enable_nestloop = false;
        // Even with everything else "disabled", Right join can't use merge,
        // so one of the penalized methods is chosen (plan still exists).
        let p = join_plan(config, col(0).eq(col(2)), JoinType::Right);
        assert_ne!(p.root_join_algorithm().unwrap(), "merge");
    }

    #[test]
    fn all_algorithms_agree_on_results() {
        let cond = col(0).eq(col(2)).and(col(1).lt(col(3)));
        for jt in [JoinType::Inner, JoinType::Left, JoinType::Full] {
            let reference = join_plan(PlannerConfig::nestloop_only(), cond.clone(), jt)
                .collect(&ExecutionState::default())
                .unwrap();
            for config in [PlannerConfig::all_enabled(), PlannerConfig::no_merge()] {
                let out = join_plan(config, cond.clone(), jt)
                    .collect(&ExecutionState::default())
                    .unwrap();
                assert!(out.same_bag(&reference), "join type {jt:?}");
            }
        }
    }

    #[test]
    fn table_scan_resolves_catalog() {
        let mut catalog = Catalog::new();
        catalog.register("t", rel(5)).unwrap();
        let lp = LogicalPlan::table_scan("t", rel(0).schema().clone()).filter(col(1).ge(lit(3i64)));
        let out = Planner::default().run(&lp, &catalog).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let lp = LogicalPlan::table_scan("nope", rel(0).schema().clone());
        assert!(Planner::default().run(&lp, &Catalog::new()).is_err());
    }

    #[test]
    fn set_gucs_by_name() {
        let mut c = PlannerConfig::default();
        c.set("enable_mergejoin", false).unwrap();
        assert!(!c.enable_mergejoin);
        assert!(c.enable_intervaljoin_auto, "heuristic is on by default");
        c.set("enable_intervaljoin_auto", false).unwrap();
        assert!(!c.enable_intervaljoin_auto);
        assert!(c.set("enable_warp_drive", true).is_err());
    }
}
