//! Inline row source (VALUES lists, constant relations).

use crate::error::EngineResult;
use crate::exec::{ExecNode, ExecutionState};
use crate::schema::Schema;
use crate::tuple::Row;

/// Emits a fixed list of rows.
pub struct ValuesExec {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl ValuesExec {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        ValuesExec {
            schema,
            rows: rows.into_iter(),
        }
    }
}

impl ExecNode for ValuesExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, _state: &ExecutionState) -> EngineResult<Option<Row>> {
        Ok(self.rows.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::collect;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    #[test]
    fn emits_fixed_rows() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let node = ValuesExec::new(
            schema,
            vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])],
        );
        let out = collect(Box::new(node), &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 2);
    }
}
