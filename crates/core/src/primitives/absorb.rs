//! The absorb operator α (Def. 12).
//!
//! Alignment adjusts each argument tuple independently, so the reduced
//! tuple-based operators can emit *temporal duplicates*: result tuples
//! whose interval is a proper subset of a value-equivalent tuple's interval
//! (paper Example 9). α removes them in a post-processing step. Our
//! implementation also removes exact duplicate rows, which the surrounding
//! set semantics requires anyway.

use std::sync::Arc;

use temporal_engine::batch::{RowBatch, BATCH_SIZE};
use temporal_engine::exec::{ExecNode, ExecutionState, SortExec};
use temporal_engine::plan::ExtensionNode;
use temporal_engine::prelude::*;

use crate::error::TemporalResult;
use crate::interval::Interval;
use crate::trel::TemporalRelation;

/// Quadratic reference implementation of Def. 12:
/// `α(r) = { r ∈ r | ¬∃ r' ∈ r (r.A = r'.A ∧ r.T ⊂ r'.T) }` (plus exact
/// de-duplication).
pub fn absorb_ref(r: &TemporalRelation) -> TemporalResult<TemporalRelation> {
    let mut out: Vec<(Vec<Value>, Interval)> = Vec::new();
    for (data, iv) in r.iter() {
        let absorbed = r
            .iter()
            .any(|(d2, iv2)| d2 == data && iv2.properly_contains(&iv));
        let duplicate = out
            .iter()
            .any(|(d2, iv2)| d2.as_slice() == data && *iv2 == iv);
        if !absorbed && !duplicate {
            out.push((data.to_vec(), iv));
        }
    }
    TemporalRelation::from_rows(r.data_schema(), out)
}

/// Plane-sweep absorb: sort value-equivalent tuples by (ts ASC, te DESC);
/// a tuple survives iff its `te` exceeds every earlier `te` in its group.
pub fn absorb(r: &TemporalRelation) -> TemporalResult<TemporalRelation> {
    let node = AbsorbNode::new(LogicalPlan::inline_scan(r.rel().clone()));
    let plan = LogicalPlan::extension(Arc::new(node));
    let out = Planner::default().run(&plan, &temporal_engine::catalog::Catalog::new())?;
    TemporalRelation::new(out)
}

/// Logical extension node for α. Self-contained: sorts its input itself.
#[derive(Debug)]
pub struct AbsorbNode {
    input: LogicalPlan,
    schema: Schema,
}

impl AbsorbNode {
    /// `input`'s last two columns must be the interval.
    pub fn new(input: LogicalPlan) -> AbsorbNode {
        let schema = input.schema();
        AbsorbNode { input, schema }
    }

    /// Convenience: α as a logical plan.
    pub fn plan(input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::extension(Arc::new(AbsorbNode::new(input)))
    }
}

impl ExtensionNode for AbsorbNode {
    fn name(&self) -> &str {
        "Absorb"
    }

    fn inputs(&self) -> Vec<&LogicalPlan> {
        vec![&self.input]
    }

    fn with_new_inputs(&self, mut inputs: Vec<LogicalPlan>) -> Arc<dyn ExtensionNode> {
        assert_eq!(inputs.len(), 1);
        Arc::new(AbsorbNode::new(inputs.remove(0)))
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn estimate(
        &self,
        input_stats: &[temporal_engine::plan::PlanStats],
        model: &temporal_engine::plan::CostModel,
    ) -> temporal_engine::plan::PlanStats {
        // Sorting dominates; absorb itself is one comparison per tuple.
        let sorted = model.sort(input_stats[0]);
        model.sweep(sorted, input_stats[0].rows * 0.9, 1.0)
    }

    /// Absorption groups are keyed by *all* data columns, so a selection on
    /// any of them drops whole groups and commutes with α; the interval
    /// columns decide absorption and must stay above.
    fn passthrough_column(&self, out_col: usize) -> Option<(usize, usize)> {
        (out_col + 2 < self.schema.len()).then_some((0, out_col))
    }

    fn build_exec(&self, mut children: Vec<BoxedExec>) -> EngineResult<BoxedExec> {
        let child = children.remove(0);
        let n = child.schema().len();
        let (ts, te) = (n - 2, n - 1);
        // Sort by all data columns, then ts ASC, te DESC.
        let mut keys: Vec<SortKey> = (0..ts).map(|i| SortKey::asc(col(i))).collect();
        keys.push(SortKey::asc(col(ts)));
        keys.push(SortKey::desc(col(te)));
        let sorted = Box::new(SortExec::new(child, keys));
        Ok(Box::new(AbsorbExec::new(sorted)))
    }

    fn explain(&self) -> String {
        "Absorb (α): drop value-equivalent tuples with properly contained intervals".to_string()
    }
}

/// Streaming absorb over sorted input. Supports both executor protocols:
/// row-at-a-time, and batch-at-a-time (one `next_batch()` call filters a
/// whole input batch through the same group state, so groups may span
/// batch boundaries freely).
pub struct AbsorbExec {
    input: BoxedExec,
    /// Data values of the current value-equivalence group.
    group: Option<Row>,
    /// Largest `te` seen so far within the group.
    max_te: i64,
    data_width: usize,
    ts_idx: usize,
    te_idx: usize,
    /// Last emitted row (for exact-duplicate elimination).
    last: Option<Row>,
    /// May this node split its input into data-run partitions and absorb
    /// them on workers? False for the per-partition sub-sweeps.
    allow_parallel: bool,
    /// Output of a partitioned parallel absorb, drained a batch at a time.
    outbuf: Option<std::vec::IntoIter<Row>>,
}

impl AbsorbExec {
    pub fn new(input: BoxedExec) -> AbsorbExec {
        let n = input.schema().len();
        AbsorbExec {
            input,
            group: None,
            max_te: i64::MIN,
            data_width: n - 2,
            ts_idx: n - 2,
            te_idx: n - 1,
            last: None,
            allow_parallel: true,
            outbuf: None,
        }
    }

    /// Partitioned absorb: materialize the sorted input, cut it at data-run
    /// boundaries (absorption groups never straddle a cut — the cut snaps
    /// forward past any group that would) and run an independent serial
    /// absorb per partition on workers. The absorb state fully resets at
    /// every data change, so the concatenation in partition order is
    /// row-identical to one serial pass (see
    /// [`crate::primitives::parallel`]). Falls back to serving the
    /// materialized rows serially when the input is small or one giant run.
    fn try_parallel(&mut self, state: &ExecutionState) -> EngineResult<()> {
        use crate::primitives::parallel::{data_partition_ranges, RowsExec};
        use temporal_engine::exec::workers::par_run;
        self.allow_parallel = false;
        let schema = self.input.schema().clone();
        let rows = temporal_engine::exec::collect_rows_batched(self.input.as_mut(), state)?;
        let ranges = data_partition_ranges(&rows, self.data_width, state.threads());
        if !state.parallel(rows.len()) || ranges.len() <= 1 {
            self.input = Box::new(RowsExec::new(schema, rows));
            return Ok(());
        }
        let chunks = par_run(state.threads(), ranges.len(), |i| {
            let (a, b) = ranges[i];
            let mut sub =
                AbsorbExec::new(Box::new(RowsExec::new(schema.clone(), rows[a..b].to_vec())));
            sub.allow_parallel = false;
            temporal_engine::exec::collect_rows_batched(&mut sub, state)
        })?;
        state.note_partitions(ranges.len());
        self.outbuf = Some(chunks.concat().into_iter());
        Ok(())
    }

    /// Feed one sorted input row through the absorb state; returns the row
    /// if it survives. Input is sorted by (data…, ts ASC, te DESC): a row
    /// is absorbed iff some earlier tuple of its group covers it, i.e.
    /// `max_te ≥ te`; exact duplicates are dropped too.
    fn admit(&mut self, row: Row) -> EngineResult<Option<Row>> {
        let te = row[self.te_idx].expect_int("absorb te")?;
        row[self.ts_idx].expect_int("absorb ts")?;
        let same_group = match &self.group {
            Some(g) => g.values()[..self.data_width] == row.values()[..self.data_width],
            None => false,
        };
        if !same_group {
            self.group = Some(row.clone());
            self.max_te = te;
            self.last = Some(row.clone());
            return Ok(Some(row));
        }
        if te > self.max_te && self.last.as_ref() != Some(&row) {
            self.max_te = te;
            self.last = Some(row.clone());
            return Ok(Some(row));
        }
        self.max_te = self.max_te.max(te);
        Ok(None)
    }
}

impl ExecNode for AbsorbExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        while let Some(row) = self.input.next(state)? {
            if let Some(out) = self.admit(row)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    /// Batch path: filter a whole sorted input batch through the absorb
    /// state per call. Loops past fully absorbed batches — `Some` batches
    /// are never empty.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        if self.allow_parallel && self.group.is_none() && state.threads() > 1 {
            self.try_parallel(state)?;
        }
        if let Some(it) = &mut self.outbuf {
            let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
            if chunk.is_empty() {
                return Ok(None);
            }
            return Ok(Some(RowBatch::new(self.input.schema().clone(), chunk)));
        }
        while let Some(batch) = self.input.next_batch(state)? {
            let (schema, rows) = batch.into_parts();
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if let Some(kept) = self.admit(row)? {
                    out.push(kept);
                }
            }
            if !out.is_empty() {
                return Ok(Some(RowBatch::new(schema, out)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn removes_properly_contained_value_equivalent_tuples() {
        // Paper Example 9: (a,c,[1,9)) absorbs (a,c,[3,7)).
        let r = rel(&[("ac", 1, 9), ("ac", 3, 7), ("ad", 3, 7)]);
        let expected = rel(&[("ac", 1, 9), ("ad", 3, 7)]);
        let fast = absorb(&r).unwrap();
        let slow = absorb_ref(&r).unwrap();
        assert!(fast.same_set(&expected), "{fast}");
        assert!(slow.same_set(&expected));
    }

    #[test]
    fn keeps_equal_intervals_and_overlapping_non_contained() {
        // equal intervals: kept once; overlap without containment: both.
        let r = rel(&[("x", 0, 5), ("x", 3, 8)]);
        let out = absorb(&r).unwrap();
        assert!(out.same_set(&r));
    }

    #[test]
    fn dedups_exact_duplicates() {
        let rel_dup = Relation::from_values(
            crate::trel::temporal_schema(vec![Column::new("v", DataType::Str)]),
            vec![
                vec![Value::str("x"), Value::Int(0), Value::Int(5)],
                vec![Value::str("x"), Value::Int(0), Value::Int(5)],
            ],
        )
        .unwrap();
        let r = TemporalRelation::new(rel_dup).unwrap();
        let out = absorb(&r).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn same_start_longer_interval_absorbs_shorter() {
        let r = rel(&[("x", 0, 9), ("x", 0, 5)]);
        let out = absorb(&r).unwrap();
        assert!(out.same_set(&rel(&[("x", 0, 9)])));
    }

    #[test]
    fn same_end_earlier_start_absorbs() {
        let r = rel(&[("x", 0, 9), ("x", 4, 9)]);
        let out = absorb(&r).unwrap();
        assert!(out.same_set(&rel(&[("x", 0, 9)])));
    }

    #[test]
    fn chains_of_absorption() {
        let r = rel(&[("x", 0, 10), ("x", 1, 9), ("x", 2, 8), ("y", 2, 8)]);
        let out = absorb(&r).unwrap();
        assert!(out.same_set(&rel(&[("x", 0, 10), ("y", 2, 8)])));
    }

    #[test]
    fn fast_and_reference_agree_on_tricky_inputs() {
        let cases: Vec<Vec<(&str, i64, i64)>> = vec![
            vec![],
            vec![("a", 0, 1)],
            vec![("a", 0, 5), ("a", 5, 9)],
            vec![("a", 0, 5), ("b", 0, 5), ("a", 1, 4), ("b", 1, 6)],
            vec![("a", 0, 8), ("a", 0, 8), ("a", 2, 8), ("a", 0, 3)],
        ];
        for rows in cases {
            let r = rel(&rows);
            let fast = absorb(&r).unwrap();
            let slow = absorb_ref(&r).unwrap();
            assert!(fast.same_set(&slow), "case {rows:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn parallel_absorb_is_row_identical_to_serial() {
        // Long runs per value (runs straddle naive cut points), nested and
        // duplicated intervals.
        let names = ["a", "b", "c"];
        let mut rows: Vec<(&str, i64, i64)> = Vec::new();
        for i in 0..150i64 {
            let v = names[(i % 3) as usize];
            rows.push((v, i % 11, i % 11 + 1 + i % 13));
            if i % 10 == 0 {
                rows.push((v, i % 11, i % 11 + 1 + i % 13)); // exact duplicate
            }
        }
        let r = rel(&rows);
        let plan = AbsorbNode::plan(LogicalPlan::inline_scan(r.rel().clone()));
        let catalog = temporal_engine::catalog::Catalog::new();
        let serial = Planner::default().run(&plan, &catalog).unwrap();
        let par = Planner::new(PlannerConfig {
            threads: 4,
            parallel_min_rows: 1,
            ..Default::default()
        })
        .run(&plan, &catalog)
        .unwrap();
        assert_eq!(serial.rows(), par.rows(), "absorb must be row-identical");
    }

    #[test]
    fn absorb_ref_ignores_different_values() {
        let r = rel(&[("a", 0, 10), ("b", 2, 4)]);
        let out = absorb_ref(&r).unwrap();
        assert!(out.same_set(&r));
    }
}
