//! The three evaluation strategies of Sec. 7 — `align` (reduction rules),
//! `sql` (overlap predicates + NOT EXISTS) and `sql+normalize` — must
//! produce identical relations on valid (duplicate-free) inputs, so the
//! benchmarks compare pure evaluation strategy, not semantics.

mod common;

use common::{random_trel, rel1};
use temporal_alignment::baselines::{
    sql_full_outer_join, sql_left_outer_join, sqlnorm_full_outer_join, sqlnorm_left_outer_join,
};
use temporal_alignment::core::prelude::*;
use temporal_alignment::datasets::{ddisj, deq, drand, incumben, prefix, IncumbenSpec};
use temporal_alignment::engine::prelude::*;

fn assert_all_equal_loj(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: Option<Expr>,
    label: &str,
) {
    let alg = TemporalAlgebra::default();
    let align = alg.left_outer_join(r, s, theta.clone()).unwrap();
    let sql = sql_left_outer_join(r, s, theta.clone(), alg.planner()).unwrap();
    let sqlnorm = sqlnorm_left_outer_join(r, s, theta, alg.planner()).unwrap();
    assert!(
        align.same_set(&sql),
        "{label}: align vs sql differ.\nalign:\n{align}\nsql:\n{sql}"
    );
    assert!(
        align.same_set(&sqlnorm),
        "{label}: align vs sql+normalize differ.\nalign:\n{align}\nsqlnorm:\n{sqlnorm}"
    );
}

fn assert_all_equal_foj(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: Option<Expr>,
    label: &str,
) {
    let alg = TemporalAlgebra::default();
    let align = alg.full_outer_join(r, s, theta.clone()).unwrap();
    let sql = sql_full_outer_join(r, s, theta.clone(), alg.planner()).unwrap();
    let sqlnorm = sqlnorm_full_outer_join(r, s, theta, alg.planner()).unwrap();
    assert!(
        align.same_set(&sql),
        "{label}: align vs sql differ.\nalign:\n{align}\nsql:\n{sql}"
    );
    assert!(
        align.same_set(&sqlnorm),
        "{label}: align vs sql+normalize differ.\nalign:\n{align}\nsqlnorm:\n{sqlnorm}"
    );
}

#[test]
fn equivalence_on_random_inputs() {
    for seed in 0..10u64 {
        let r = random_trel(seed * 3 + 1, 8, 3, 18);
        let s = random_trel(seed * 3 + 2, 8, 3, 18);
        assert_all_equal_loj(&r, &s, None, &format!("seed {seed} θ=true"));
        assert_all_equal_loj(
            &r,
            &s,
            Some(col(0).eq(col(3))),
            &format!("seed {seed} θ=eq"),
        );
        assert_all_equal_foj(
            &r,
            &s,
            Some(col(0).eq(col(3))),
            &format!("seed {seed} FOJ θ=eq"),
        );
    }
}

#[test]
fn equivalence_on_o1_workloads() {
    // O1 = r ⟕ᵀ_true s on the Fig. 15a/15b datasets (small instances).
    let (r, s) = ddisj(40);
    assert_all_equal_loj(&r, &s, None, "Ddisj");
    let (r, s) = deq(12);
    assert_all_equal_loj(&r, &s, None, "Deq");
}

#[test]
fn equivalence_on_o2_workload() {
    // O2 = r ⟕ᵀ_{Min ≤ DUR(r.T) ≤ Max} s on Drand: θ references r's
    // original timestamp, so r is extended first (us at 1, ue at 2);
    // concat row = (id, us, ue, ts, te, a, min, max, ts, te).
    let (r, s) = drand(60, 11);
    let ur = extend(&r).unwrap();
    let theta = Expr::Func(Func::Dur, vec![col(1), col(2)]).between(col(6), col(7));
    assert_all_equal_loj(&ur, &s, Some(theta), "Drand/O2");
}

#[test]
fn equivalence_on_o3_workload() {
    // O3 = r ⟗ᵀ_{r.pcn = s.pcn} s on an Incumben subset (self join).
    let data = incumben(IncumbenSpec {
        rows: 90,
        employees: 60,
        positions: 8,
        days: 400,
        ..Default::default()
    });
    let r = prefix(&data, 45);
    let s = {
        // second half as a distinct relation
        let rows: Vec<_> = data.rows()[45..].to_vec();
        TemporalRelation::new(Relation::new(data.schema().clone(), rows).unwrap()).unwrap()
    };
    // (ssn, pcn, ts, te) ++ (ssn, pcn, ts, te): pcn = cols 1 and 5.
    let theta = Some(col(1).eq(col(5)));
    assert_all_equal_foj(&r, &s, theta, "Incumben/O3");
}

#[test]
fn sql_baseline_is_quadratic_shaped_on_ddisj() {
    // Not a timing test — a plan-shape test: on Ddisj with θ = true the
    // NOT EXISTS anti join has no usable equi keys, so the planner must
    // fall back to a nested loop (the cause of Fig. 15a's quadratic sql
    // curve).
    use temporal_alignment::baselines::sql_outer_join::sql_left_outer_join_plan;
    let (r, s) = ddisj(20);
    let plan = sql_left_outer_join_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        None,
    )
    .unwrap();
    let physical = Planner::default()
        .plan(&plan, &temporal_engine::catalog::Catalog::new())
        .unwrap();
    let text = physical.explain();
    assert!(
        text.contains("NestedLoopJoin[Anti]"),
        "expected NL anti join in:\n{text}"
    );
}

#[test]
fn align_reduction_uses_keyed_join_on_o3() {
    // Conversely, the reduced O3 join carries ts/te (+pcn) equality keys,
    // so hash or merge joins apply (Sec. 7.4's explanation of Fig. 15d).
    use temporal_alignment::core::algebra::reduce_join;
    let data = incumben(IncumbenSpec {
        rows: 40,
        employees: 30,
        positions: 5,
        days: 300,
        ..Default::default()
    });
    let plan = reduce_join(
        LogicalPlan::inline_scan(data.rel().clone()),
        LogicalPlan::inline_scan(data.rel().clone()),
        JoinType::Full,
        Some(col(1).eq(col(5))),
    )
    .unwrap();
    let physical = Planner::default()
        .plan(&plan, &temporal_engine::catalog::Catalog::new())
        .unwrap();
    let text = physical.explain();
    assert!(
        text.contains("HashJoin[Full] on 3 key(s)") || text.contains("MergeJoin[Full] on 3 key(s)"),
        "expected keyed full join in:\n{text}"
    );
}

#[test]
fn fixed_regressions() {
    // Cases that once differed during development.
    let r = rel1("r", &[(1, 0, 8), (2, 5, 12)]);
    let s = rel1("s", &[(7, 2, 4), (8, 6, 15)]);
    assert_all_equal_loj(&r, &s, None, "regression 1");
    // adjacent covers
    let r = rel1("r", &[(1, 0, 10)]);
    let s = rel1("s", &[(1, 2, 4), (1, 4, 6)]);
    assert_all_equal_loj(&r, &s, Some(col(0).eq(col(3))), "regression 2");
}
