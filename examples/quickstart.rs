//! Quickstart: build two interval-timestamped relations and run sequenced
//! temporal operators through the reduction rules.
//!
//! Run with: `cargo run --example quickstart`

use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny project-staffing database: who works on what, and when.
    let staff = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("person", DataType::Str),
            Column::new("team", DataType::Str),
        ]),
        vec![
            (
                vec![Value::str("ann"), Value::str("db")],
                Interval::of(0, 8),
            ),
            (
                vec![Value::str("joe"), Value::str("db")],
                Interval::of(2, 6),
            ),
            (
                vec![Value::str("sam"), Value::str("ui")],
                Interval::of(4, 10),
            ),
        ],
    )?;
    let oncall = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("team", DataType::Str)]),
        vec![
            (vec![Value::str("db")], Interval::of(3, 5)),
            (vec![Value::str("ui")], Interval::of(5, 7)),
        ],
    )?;

    println!("staff:\n{staff}");
    println!("oncall windows:\n{oncall}");

    let alg = TemporalAlgebra::default();

    // Temporal inner join: who was staffed while their team was on call?
    // θ: staff.team = oncall.team, expressed over the concatenation of the
    // two full rows (staff = person, team, ts, te → team is column 1;
    // oncall.team is column 4).
    let theta = col(1).eq(col(4));
    let on_duty = alg.join(&staff, &oncall, Some(theta.clone()))?;
    println!("on duty (⋈ᵀ):\n{on_duty}");

    // Temporal left outer join: everyone, with ω where no on-call window.
    let coverage = alg.left_outer_join(&staff, &oncall, Some(theta.clone()))?;
    println!("coverage (⟕ᵀ):\n{coverage}");

    // Temporal anti join: staffed periods with no on-call window at all.
    let idle = alg.anti_join(&staff, &oncall, Some(theta))?;
    println!("not on call (▷ᵀ):\n{idle}");

    // Temporal aggregation: headcount over time.
    let headcount = alg.aggregation(
        &staff,
        &[],
        vec![(AggCall::count_star(), "headcount".to_string())],
    )?;
    println!("headcount over time (ϑᵀ):\n{headcount}");

    // Every result is snapshot reducible: check one snapshot by hand.
    let t = 4;
    println!("snapshot of staff at t={t}:\n{}", staff.timeslice(t));
    println!(
        "snapshot of headcount at t={t}:\n{}",
        headcount.timeslice(t)
    );

    Ok(())
}
