//! In-memory relations: a schema plus a vector of rows.
//!
//! The paper assumes *set-based semantics with duplicate-free temporal
//! relations* (Sec. 3.1); [`Relation::dedup`] and [`Relation::same_set`]
//! support that discipline, while row storage itself is a plain vector so
//! executor nodes control when deduplication happens.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use crate::error::{EngineError, EngineResult};
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

/// A materialized relation.
///
/// The row vector is behind an `Arc`, so cloning a relation — and schema
/// re-attachment via [`Relation::with_schema`] — shares storage instead of
/// copying it; mutation goes through copy-on-write.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Arc<Vec<Row>>,
}

impl Relation {
    /// Build a relation, validating row arity against the schema.
    pub fn new(schema: Schema, rows: Vec<Row>) -> EngineResult<Self> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != schema.len() {
                return Err(EngineError::SchemaMismatch(format!(
                    "row {i} has {} values, schema has {} columns",
                    r.len(),
                    schema.len()
                )));
            }
        }
        Ok(Relation {
            schema,
            rows: Arc::new(rows),
        })
    }

    /// Build from plain value vectors.
    pub fn from_values(schema: Schema, rows: Vec<Vec<Value>>) -> EngineResult<Self> {
        Relation::new(schema, rows.into_iter().map(Row::new).collect())
    }

    /// The empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Arc::new(Vec::new()),
        }
    }

    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Append a row (arity-checked). Copy-on-write when the rows are shared.
    pub fn push(&mut self, row: Row) -> EngineResult<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        Arc::make_mut(&mut self.rows).push(row);
        Ok(())
    }

    /// Append all rows of a batch (arity-checked). Copy-on-write when the
    /// rows are shared. This is how batch-wise result collection
    /// ([`crate::exec::collect`]) materializes executor output.
    pub fn push_batch(&mut self, batch: crate::batch::RowBatch) -> EngineResult<()> {
        let rows = batch.into_rows();
        for r in &rows {
            if r.len() != self.schema.len() {
                return Err(EngineError::SchemaMismatch(format!(
                    "batch row has {} values, schema has {} columns",
                    r.len(),
                    self.schema.len()
                )));
            }
        }
        Arc::make_mut(&mut self.rows).extend(rows);
        Ok(())
    }

    /// Consume and return the rows (copies only if still shared).
    pub fn into_rows(self) -> Vec<Row> {
        Arc::try_unwrap(self.rows).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Replace the schema (e.g. to attach qualifiers). Arity must match.
    /// The rows are shared with `self`, not copied.
    pub fn with_schema(&self, schema: Schema) -> EngineResult<Relation> {
        if schema.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch(format!(
                "cannot re-schema {} columns as {}",
                self.schema.len(),
                schema.len()
            )));
        }
        Ok(Relation {
            schema,
            rows: Arc::clone(&self.rows),
        })
    }

    /// Remove duplicate rows (set semantics), preserving first occurrence.
    pub fn dedup(&mut self) {
        let mut seen: HashSet<Row> = HashSet::with_capacity(self.rows.len());
        Arc::make_mut(&mut self.rows).retain(|r| seen.insert(r.clone()));
    }

    /// True iff the relation contains no duplicate rows.
    pub fn is_set(&self) -> bool {
        let mut seen: HashSet<&Row> = HashSet::with_capacity(self.rows.len());
        self.rows.iter().all(|r| seen.insert(r))
    }

    /// A copy with rows in canonical (sorted) order — for comparisons and
    /// deterministic display. Prefer [`Relation::into_sorted`] on an owned
    /// relation, which sorts in place when the rows are not shared.
    pub fn sorted(&self) -> Relation {
        self.clone().into_sorted()
    }

    /// Sort the rows in canonical order, consuming the relation. Only
    /// copies the row vector if it is still shared with another relation.
    pub fn into_sorted(mut self) -> Relation {
        Arc::make_mut(&mut self.rows).sort();
        self
    }

    /// Set equality: same rows regardless of order or multiplicity.
    pub fn same_set(&self, other: &Relation) -> bool {
        let a: HashSet<&Row> = self.rows.iter().collect();
        let b: HashSet<&Row> = other.rows.iter().collect();
        a == b
    }

    /// Bag equality: same rows with the same multiplicities. Counts row
    /// occurrences instead of cloning and sorting both row vectors.
    pub fn same_bag(&self, other: &Relation) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut counts: HashMap<&Row, i64> = HashMap::with_capacity(self.rows.len());
        for r in self.rows.iter() {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in other.rows.iter() {
            match counts.get_mut(r) {
                Some(c) => *c -= 1,
                None => return false,
            }
        }
        counts.values().all(|&c| c == 0)
    }

    /// Share the relation (scans clone the `Arc`, not the rows).
    pub fn into_shared(self) -> Arc<Relation> {
        Arc::new(self)
    }

    /// Render as an aligned text table (for examples and docs).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .cols()
            .iter()
            .map(|c| c.qualified_name())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        widths[i] = widths[i].max(s.chars().count());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let sep = |out: &mut String, widths: &[usize]| {
            out.push('+');
            for w in widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out, &widths);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out, &widths);
        for row in &rendered {
            out.push('|');
            for (v, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {v:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out, &widths);
        out.push_str(&format!("({} rows)\n", self.rows.len()));
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn sample() -> Relation {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
        ]);
        Relation::from_values(
            schema,
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
                vec![Value::Int(1), Value::str("x")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_checked() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        assert!(Relation::from_values(schema, vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
    }

    #[test]
    fn dedup_and_set_check() {
        let mut r = sample();
        assert!(!r.is_set());
        r.dedup();
        assert!(r.is_set());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn set_and_bag_equality() {
        let r = sample();
        let mut d = sample();
        d.dedup();
        assert!(r.same_set(&d));
        assert!(!r.same_bag(&d));
        assert!(r.same_bag(&r.sorted()));
    }

    #[test]
    fn table_rendering_contains_headers_and_counts() {
        let t = sample().to_table();
        assert!(t.contains("| a | b |"));
        assert!(t.contains("(3 rows)"));
    }

    #[test]
    fn with_schema_shares_rows_copy_on_write() {
        let r = sample();
        let schema = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("y", DataType::Str),
        ]);
        let mut renamed = r.with_schema(schema).unwrap();
        // Shared storage: both relations point at the same row vector.
        assert!(std::ptr::eq(r.rows().as_ptr(), renamed.rows().as_ptr()));
        // Copy-on-write: mutating the copy leaves the original untouched.
        renamed
            .push(Row::new(vec![Value::Int(9), Value::str("z")]))
            .unwrap();
        assert_eq!(renamed.len(), 4);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn into_sorted_matches_sorted() {
        let r = sample();
        assert_eq!(r.sorted(), r.clone().into_sorted());
    }

    #[test]
    fn push_checks_arity() {
        let mut r = sample();
        assert!(r.push(Row::new(vec![Value::Int(1)])).is_err());
        assert!(r
            .push(Row::new(vec![Value::Int(3), Value::str("z")]))
            .is_ok());
        assert_eq!(r.len(), 4);
    }
}
