//! Duplicate elimination (set semantics), streaming.

use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::hashing::FxHashSet;
use crate::schema::Schema;
use crate::tuple::Row;

/// Emits each distinct row once, in first-occurrence order. Structural row
/// equality: NULL = NULL (SQL `DISTINCT` semantics).
pub struct DistinctExec {
    input: BoxedExec,
    seen: FxHashSet<Row>,
}

impl DistinctExec {
    pub fn new(input: BoxedExec) -> Self {
        DistinctExec {
            input,
            seen: FxHashSet::default(),
        }
    }
}

impl ExecNode for DistinctExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        while let Some(row) = self.input.next(state)? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, ExecutionState, SeqScanExec};
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    #[test]
    fn removes_duplicates_preserving_order() {
        let rel = int2_rel(("a", "b"), &[(1, 1), (2, 2), (1, 1), (2, 2), (3, 3)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let out = collect(
            Box::new(DistinctExec::new(scan)),
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[2][0], Value::Int(3));
    }

    #[test]
    fn null_rows_are_duplicates_of_each_other() {
        let rel = Relation::from_values(
            Schema::new(vec![Column::new("a", DataType::Int)]),
            vec![vec![Value::Null], vec![Value::Null]],
        )
        .unwrap()
        .into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let out = collect(
            Box::new(DistinctExec::new(scan)),
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }
}
