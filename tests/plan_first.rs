//! Plan-first compilation (ISSUE 2): composed `TemporalPlan` pipelines
//! must agree with the old per-operator (eager) evaluation and with the
//! point-wise `reference::oracle`, and a multi-operator temporal query
//! must compile into a *single* physical tree — one `Planner::run`, no
//! intermediate materialization barriers.

mod common;

use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::reference::evaluate_oracle;
use temporal_alignment::core::semantics::TemporalOp;
use temporal_alignment::engine::catalog::Catalog;
use temporal_alignment::engine::plan::PhysicalPlan;
use temporal_alignment::engine::prelude::*;
use temporal_datasets::{ddisj, deq, drand};

/// Apply one operator to a composed plan (plan-first path).
fn apply_plan(
    op: &TemporalOp,
    plan: TemporalPlan,
    rhs: Option<TemporalPlan>,
) -> TemporalResult<TemporalPlan> {
    match op {
        TemporalOp::Selection { predicate } => plan.selection(predicate.clone()),
        TemporalOp::Projection { attrs } => plan.projection(attrs),
        TemporalOp::Aggregation { group, aggs } => plan.aggregation(group, aggs.clone()),
        TemporalOp::Union => plan.union(rhs.expect("binary")),
        TemporalOp::Difference => plan.difference(rhs.expect("binary")),
        TemporalOp::Intersection => plan.intersection(rhs.expect("binary")),
        TemporalOp::CartesianProduct => plan.cartesian_product(rhs.expect("binary")),
        TemporalOp::Join { theta } => plan.join(rhs.expect("binary"), theta.clone()),
        TemporalOp::LeftOuterJoin { theta } => {
            plan.left_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::RightOuterJoin { theta } => {
            plan.right_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::FullOuterJoin { theta } => {
            plan.full_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::AntiJoin { theta } => plan.anti_join(rhs.expect("binary"), theta.clone()),
    }
}

/// Chains whose first operator is binary over `(r, s)` and whose remaining
/// operators are unary — valid for two one-data-column relations.
fn chains_1col() -> Vec<Vec<TemporalOp>> {
    let count = vec![(AggCall::count_star(), "cnt".to_string())];
    vec![
        vec![
            TemporalOp::Join {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Selection {
                predicate: col(0).ge(lit(1i64)),
            },
            TemporalOp::Projection { attrs: vec![0] },
        ],
        vec![
            TemporalOp::LeftOuterJoin { theta: None },
            TemporalOp::Selection {
                predicate: col(0).ge(lit(0i64)),
            },
            TemporalOp::Aggregation {
                group: vec![0],
                aggs: count.clone(),
            },
        ],
        vec![
            TemporalOp::Union,
            TemporalOp::Selection {
                predicate: col(0).lt(lit(4i64)),
            },
            TemporalOp::Projection { attrs: vec![0] },
        ],
        vec![
            TemporalOp::Difference,
            TemporalOp::Aggregation {
                group: vec![],
                aggs: count,
            },
        ],
        vec![
            TemporalOp::FullOuterJoin {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Projection { attrs: vec![0, 1] },
        ],
    ]
}

/// Evaluate a chain three ways and assert all agree.
fn check_chain(chain: &[TemporalOp], r: &TemporalRelation, s: &TemporalRelation, label: &str) {
    let alg = TemporalAlgebra::default();

    // Plan-first: one composed plan, one Planner::run.
    let mut plan = apply_plan(
        &chain[0],
        TemporalPlan::scan(r),
        Some(TemporalPlan::scan(s)),
    )
    .unwrap_or_else(|e| panic!("{label}: compose {}: {e}", chain[0].name()));
    for op in &chain[1..] {
        plan = apply_plan(op, plan, None)
            .unwrap_or_else(|e| panic!("{label}: compose {}: {e}", op.name()));
    }
    let composed = plan
        .execute(alg.planner())
        .unwrap_or_else(|e| panic!("{label}: execute: {e}"));

    // Eager: one TemporalAlgebra call per operator, materializing between.
    let mut eager = chain[0]
        .evaluate(&alg, &[r, s])
        .unwrap_or_else(|e| panic!("{label}: eager {}: {e}", chain[0].name()));
    for op in &chain[1..] {
        eager = op
            .evaluate(&alg, &[&eager])
            .unwrap_or_else(|e| panic!("{label}: eager {}: {e}", op.name()));
    }

    // Oracle: the point-wise reference evaluator, per operator.
    let mut oracle = evaluate_oracle(&chain[0], &[r, s])
        .unwrap_or_else(|e| panic!("{label}: oracle {}: {e}", chain[0].name()));
    for op in &chain[1..] {
        oracle = evaluate_oracle(op, &[&oracle])
            .unwrap_or_else(|e| panic!("{label}: oracle {}: {e}", op.name()));
    }

    assert!(
        composed.same_set(&eager),
        "{label}: plan-first vs eager mismatch.\ncomposed:\n{composed}\neager:\n{eager}"
    );
    assert!(
        composed.same_set(&oracle),
        "{label}: plan-first vs oracle mismatch.\ncomposed:\n{composed}\noracle:\n{oracle}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pipelines over the paper's synthetic datasets: plan-first ≡ eager ≡
    /// oracle on Ddisj and Deq of random sizes.
    #[test]
    fn pipelines_agree_on_ddisj_and_deq(n in 2usize..6) {
        let (r, s) = ddisj(n);
        for (i, chain) in chains_1col().iter().enumerate() {
            check_chain(chain, &r, &s, &format!("ddisj({n}) chain {i}"));
        }
        let (r, s) = deq(n);
        for (i, chain) in chains_1col().iter().enumerate() {
            check_chain(chain, &r, &s, &format!("deq({n}) chain {i}"));
        }
    }

    /// Pipelines on Drand (random intervals, asymmetric schemas): the
    /// tuple-based chain θ-joins r's id against s's category column.
    #[test]
    fn pipelines_agree_on_drand(n in 2usize..6, seed in 0u64..1000) {
        let (r, s) = drand(n, seed);
        // concat row = (id, ts, te, a, min, max, ts, te)
        let chains: Vec<Vec<TemporalOp>> = vec![
            vec![
                TemporalOp::Join { theta: Some(col(0).lt(col(3))) },
                TemporalOp::Projection { attrs: vec![0] },
                TemporalOp::Aggregation {
                    group: vec![],
                    aggs: vec![(AggCall::count_star(), "cnt".to_string())],
                },
            ],
            vec![
                TemporalOp::AntiJoin { theta: Some(col(0).eq(col(3))) },
                TemporalOp::Selection { predicate: col(0).ge(lit(0i64)) },
                TemporalOp::Projection { attrs: vec![0] },
            ],
            vec![
                TemporalOp::LeftOuterJoin { theta: Some(col(0).lt(col(3))) },
                TemporalOp::Selection { predicate: col(1).ge(lit(0i64)) },
                TemporalOp::Projection { attrs: vec![0, 1] },
            ],
        ];
        for (i, chain) in chains.iter().enumerate() {
            check_chain(chain, &r, &s, &format!("drand({n}, {seed}) chain {i}"));
        }
    }
}

/// The acceptance check of ISSUE 2: a temporal query composing three
/// sequenced operators (σᵀ ∘ ⋈ᵀ ∘ σᵀ) compiles into **one** physical tree
/// whose only scans are the base relations — no `InlineScan` barrier of a
/// materialized intermediate anywhere — and executes via a single
/// `Planner::run`.
#[test]
fn three_operator_chain_compiles_to_single_tree() {
    let (r, s) = drand(64, 7);
    let theta = col(0).lt(col(3));
    let plan = TemporalPlan::scan(&r)
        .selection(col(0).ge(lit(5i64)))
        .unwrap()
        .join(TemporalPlan::scan(&s), Some(theta))
        .unwrap()
        .selection(col(0).lt(lit(40i64)))
        .unwrap();

    let planner = Planner::default();
    let physical = plan.physical(&planner, &Catalog::new()).unwrap();
    let text = physical.explain();

    // One tree containing the whole reduction: both alignments and the
    // final absorb, with no spool (all operands are cheap leaf scans).
    assert_eq!(text.matches("TemporalAligner").count(), 2, "{text}");
    assert!(text.contains("Absorb"), "{text}");
    assert!(!text.contains("Spool"), "{text}");

    // Every scan in the single physical tree reads the *base* relations'
    // row storage directly (r twice, s twice — the two alignments), i.e.
    // there is no InlineScan of a materialized intermediate.
    let is_base_scan = |p: &PhysicalPlan| match p {
        PhysicalPlan::SeqScan { rel, .. } => {
            std::ptr::eq(rel.rows().as_ptr(), r.rel().rows().as_ptr())
                || std::ptr::eq(rel.rows().as_ptr(), s.rel().rows().as_ptr())
        }
        _ => false,
    };
    let scans = physical.count_nodes(&|p| matches!(p, PhysicalPlan::SeqScan { .. }));
    let base_scans = physical.count_nodes(&is_base_scan);
    assert_eq!(scans, 4, "{text}");
    assert_eq!(
        base_scans, scans,
        "every scan must read a base relation:\n{text}"
    );

    // The late σᵀ on r's data column crossed the absorb, the reduced join
    // and the alignment: the root of the single tree is the absorb (no
    // residual filter above it).
    assert!(
        text.starts_with("Absorb"),
        "selection should be pushed below the root:\n{text}"
    );

    // And the whole thing — one Planner::run — matches eager evaluation.
    let alg = TemporalAlgebra::default();
    let composed = plan.execute(&planner).unwrap();
    let joined = alg
        .join(
            &alg.selection(&r, col(0).ge(lit(5i64))).unwrap(),
            &s,
            Some(col(0).lt(col(3))),
        )
        .unwrap();
    let eager = alg.selection(&joined, col(0).lt(lit(40i64))).unwrap();
    assert!(composed.same_set(&eager));
}

/// Group-based composition: the composed operand is spooled (shared
/// materialization), still one physical tree and one run.
#[test]
fn group_based_chain_spools_composed_operand() {
    let (r, s) = ddisj(16);
    let plan = TemporalPlan::scan(&r)
        .union(TemporalPlan::scan(&s))
        .unwrap()
        .projection(&[0])
        .unwrap();
    let planner = Planner::default();
    let text = plan.explain(&planner, &Catalog::new()).unwrap();
    assert!(text.contains("Spool"), "{text}");
    let composed = plan.execute(&planner).unwrap();
    let alg = TemporalAlgebra::default();
    let eager = alg.projection(&alg.union(&r, &s).unwrap(), &[0]).unwrap();
    assert!(composed.same_set(&eager));
}
