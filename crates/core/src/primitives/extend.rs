//! Timestamp propagation: the extend operator `U(r)` (Def. 3).
//!
//! `U(r)` copies each tuple's interval into explicit nontemporal attributes
//! so that predicates and functions may reference the *original* timestamps
//! even after alignment has adjusted `T` — the mechanism behind extended
//! snapshot reducibility (Def. 4). In the paper's SQL this is
//! `WITH R AS (SELECT Ts Us, Te Ue, * FROM R)`.

use temporal_engine::prelude::*;

use crate::error::TemporalResult;
use crate::trel::TemporalRelation;

/// Default name for the propagated start point.
pub const US: &str = "us";
/// Default name for the propagated end point.
pub const UE: &str = "ue";

/// `U(r)`: returns a relation with schema `(A…, us, ue, ts, te)` where
/// `us`/`ue` are copies of the interval endpoints.
pub fn extend(r: &TemporalRelation) -> TemporalResult<TemporalRelation> {
    extend_named(r, US, UE)
}

/// [`extend`] with explicit column names (needed when both arguments of a
/// binary operator are extended).
pub fn extend_named(
    r: &TemporalRelation,
    us_name: &str,
    ue_name: &str,
) -> TemporalResult<TemporalRelation> {
    let dw = r.data_width();
    let (ts, te) = (r.ts_idx(), r.te_idx());

    let mut cols = r.data_schema().cols().to_vec();
    cols.push(Column::new(us_name, DataType::Int));
    cols.push(Column::new(ue_name, DataType::Int));
    cols.push(r.schema().col(ts).clone());
    cols.push(r.schema().col(te).clone());
    let schema = Schema::new(cols);

    let rows: Vec<Row> = r
        .rows()
        .iter()
        .map(|row| {
            let mut vals = Vec::with_capacity(dw + 4);
            vals.extend_from_slice(&row.values()[..dw]);
            vals.push(row[ts].clone());
            vals.push(row[te].clone());
            vals.push(row[ts].clone());
            vals.push(row[te].clone());
            Row::new(vals)
        })
        .collect();

    let rel = Relation::new(schema, rows)?;
    TemporalRelation::new(rel)
}

/// The logical-plan version of [`extend`]: wraps `input` (whose last two
/// columns are ts/te) in a projection appending propagated copies before
/// the interval.
pub fn extend_plan(
    input: LogicalPlan,
    us_name: &str,
    ue_name: &str,
) -> TemporalResult<LogicalPlan> {
    let schema = input.schema();
    let n = schema.len();
    let (ts, te) = (n - 2, n - 1);
    let mut items: Vec<(Expr, String)> = Vec::with_capacity(n + 2);
    for i in 0..ts {
        items.push((col(i), schema.col(i).name.clone()));
    }
    items.push((col(ts), us_name.to_string()));
    items.push((col(te), ue_name.to_string()));
    items.push((col(ts), schema.col(ts).name.clone()));
    items.push((col(te), schema.col(te).name.clone()));
    Ok(input.project_named(items)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn r() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (vec![Value::str("ann")], Interval::of(0, 7)),
                (vec![Value::str("joe")], Interval::of(1, 5)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn extend_copies_interval_into_data_columns() {
        let u = extend(&r()).unwrap();
        assert_eq!(u.data_width(), 3); // n, us, ue
        assert_eq!(u.schema().names(), vec!["n", "us", "ue", "ts", "te"]);
        let (data, iv) = u.iter().next().unwrap();
        assert_eq!(data, &[Value::str("ann"), Value::Int(0), Value::Int(7)]);
        assert_eq!(iv, Interval::of(0, 7));
    }

    #[test]
    fn extend_named_avoids_clashes() {
        let u = extend_named(&r(), "rus", "rue").unwrap();
        assert_eq!(u.schema().names(), vec!["n", "rus", "rue", "ts", "te"]);
    }

    #[test]
    fn plan_version_matches_materialized() {
        use temporal_engine::catalog::Catalog;
        let rel = r();
        let plan = extend_plan(LogicalPlan::inline_scan(rel.rel().clone()), US, UE).unwrap();
        let out = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let expected = extend(&rel).unwrap();
        assert!(out.same_set(expected.rel()));
    }
}
