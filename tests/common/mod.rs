//! Shared helpers for the integration test suites: deterministic random
//! generation of *valid* (duplicate-free) temporal relations, and fixture
//! builders for the paper's running example.

#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;

/// Build a one-data-column relation from `(value, ts, te)` triples.
pub fn rel1(name: &str, rows: &[(i64, i64, i64)]) -> TemporalRelation {
    TemporalRelation::from_rows(
        Schema::new(vec![Column::qualified(name, "k", DataType::Int)]),
        rows.iter()
            .map(|&(k, s, e)| (vec![Value::Int(k)], Interval::of(s, e)))
            .collect(),
    )
    .expect("valid fixture")
}

/// Build a two-data-column relation from `(k, w, ts, te)` tuples.
pub fn rel2(name: &str, rows: &[(i64, i64, i64, i64)]) -> TemporalRelation {
    TemporalRelation::from_rows(
        Schema::new(vec![
            Column::qualified(name, "k", DataType::Int),
            Column::qualified(name, "w", DataType::Int),
        ]),
        rows.iter()
            .map(|&(k, w, s, e)| (vec![Value::Int(k), Value::Int(w)], Interval::of(s, e)))
            .collect(),
    )
    .expect("valid fixture")
}

/// Generate a random duplicate-free temporal relation with one Int data
/// column drawn from `0..val_dom` and intervals inside `[0, time_dom)`.
/// Candidate rows violating duplicate-freeness are dropped greedily, so
/// the result is always a valid temporal relation (Sec. 3.1).
pub fn random_trel(seed: u64, max_rows: usize, val_dom: i64, time_dom: i64) -> TemporalRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept: Vec<(i64, Interval)> = Vec::new();
    for _ in 0..max_rows {
        let v = rng.gen_range(0..val_dom);
        let ts = rng.gen_range(0..time_dom - 1);
        let te = rng.gen_range(ts + 1..=time_dom);
        let iv = Interval::of(ts, te);
        let ok = kept
            .iter()
            .all(|(v2, iv2)| *v2 != v || (!iv2.overlaps(&iv) && *iv2 != iv));
        if ok {
            kept.push((v, iv));
        }
    }
    TemporalRelation::from_rows(
        Schema::new(vec![Column::new("k", DataType::Int)]),
        kept.into_iter()
            .map(|(v, iv)| (vec![Value::Int(v)], iv))
            .collect(),
    )
    .expect("constructed duplicate free")
}

/// Random duplicate-free relation with two Int data columns.
pub fn random_trel2(seed: u64, max_rows: usize, val_dom: i64, time_dom: i64) -> TemporalRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept: Vec<(i64, i64, Interval)> = Vec::new();
    for _ in 0..max_rows {
        let k = rng.gen_range(0..val_dom);
        let w = rng.gen_range(0..val_dom);
        let ts = rng.gen_range(0..time_dom - 1);
        let te = rng.gen_range(ts + 1..=time_dom);
        let iv = Interval::of(ts, te);
        let ok = kept
            .iter()
            .all(|(k2, w2, iv2)| *k2 != k || *w2 != w || (!iv2.overlaps(&iv) && *iv2 != iv));
        if ok {
            kept.push((k, w, iv));
        }
    }
    TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("w", DataType::Int),
        ]),
        kept.into_iter()
            .map(|(k, w, iv)| (vec![Value::Int(k), Value::Int(w)], iv))
            .collect(),
    )
    .expect("constructed duplicate free")
}

/// The paper's reservations relation R (Fig. 1a), months as integers via
/// `month::ym`.
pub fn paper_r() -> TemporalRelation {
    use temporal_core::interval::month::ym;
    TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )
    .expect("valid fixture")
}

/// The paper's price relation P (Fig. 1a).
pub fn paper_p() -> TemporalRelation {
    use temporal_core::interval::month::ym;
    let row = |a: i64, min: i64, max: i64, from: (i64, i64), to: (i64, i64)| {
        (
            vec![Value::Int(a), Value::Int(min), Value::Int(max)],
            Interval::of(ym(from.0, from.1), ym(to.0, to.1)),
        )
    };
    TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            row(50, 1, 2, (2012, 1), (2012, 6)),
            row(40, 3, 7, (2012, 1), (2012, 6)),
            row(30, 8, 12, (2012, 1), (2013, 1)),
            row(50, 1, 2, (2012, 10), (2013, 1)),
            row(40, 3, 7, (2012, 10), (2013, 1)),
        ],
    )
    .expect("valid fixture")
}
