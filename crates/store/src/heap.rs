//! Append-only heap files: ordered pages of variable-length records.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::{StoreError, StoreResult};
use crate::page::{Page, PageId, PageZone, PAGE_SIZE};
use crate::wal::{Wal, WalRecord};

/// Where a logged heap sends its append records.
#[derive(Debug, Clone)]
struct WalSink {
    wal: Arc<Wal>,
    table: String,
}

/// A consistent prefix of one heap, captured atomically and readable
/// without taking any heap lock. Because the heap is append-only, the
/// prefix `pages 0 .. pages-1` with the last page capped at
/// `tail_tuples` records can never change after capture: pages before
/// the tail are frozen forever, and the tail page only *grows*. A scan
/// that clamps itself to a snapshot therefore sees exactly the rows
/// that were visible at capture time — snapshot isolation for readers,
/// with writers never blocked and never blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapSnapshot {
    /// Number of visible pages (ids `0 .. pages`).
    pub pages: u32,
    /// Number of visible tuples on the last visible page (`pages - 1`).
    pub tail_tuples: u16,
    /// Total visible rows (a statistic for sizing decisions — exact
    /// between batches, may lag mid-batch by design).
    pub rows: u64,
}

impl HeapSnapshot {
    /// The empty prefix.
    pub const EMPTY: HeapSnapshot = HeapSnapshot {
        pages: 0,
        tail_tuples: 0,
        rows: 0,
    };

    /// How many tuples of `page` this snapshot exposes: `None` means the
    /// whole page (it is frozen below the snapshot tail), `Some(k)` caps
    /// decoding at the first `k` slots (`Some(0)` for pages past the
    /// snapshot entirely).
    pub fn visible_tuples(&self, page: PageId) -> Option<u16> {
        match (page + 1).cmp(&self.pages) {
            std::cmp::Ordering::Less => None,
            std::cmp::Ordering::Equal => Some(self.tail_tuples),
            std::cmp::Ordering::Greater => Some(0),
        }
    }

    /// Does this snapshot expose any tuple of `page`?
    pub fn sees_page(&self, page: PageId) -> bool {
        page + 1 < self.pages || (page + 1 == self.pages && self.tail_tuples > 0)
    }

    fn pack(pages: u32, tail_tuples: u16) -> u64 {
        ((pages as u64) << 16) | tail_tuples as u64
    }

    fn unpack(word: u64) -> (u32, u16) {
        ((word >> 16) as u32, (word & 0xFFFF) as u16)
    }
}

/// Defers snapshot publication while a multi-row append batch is in
/// flight: concurrent readers keep seeing the pre-batch prefix until the
/// guard drops, so a batch becomes visible atomically (all rows or none)
/// rather than row by row. Nests; the outermost drop publishes.
#[must_use = "the batch is published when this guard drops"]
pub struct AppendBatch<'a> {
    heap: &'a TableHeap,
}

impl Drop for AppendBatch<'_> {
    fn drop(&mut self) {
        if self.heap.batch_depth.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.heap.publish_pending();
        }
    }
}

/// A table's heap file behind a [`BufferPool`]: records append to the last
/// page (spilling into fresh pages) and scans visit pages in order, one
/// pinned page at a time — a pool smaller than the file streams.
///
/// The heap is byte-oriented: records are opaque `&[u8]`. The tuple
/// encoding (and the schema whose fingerprint every page carries) lives
/// one layer up, in the engine's storage glue.
#[derive(Debug)]
pub struct TableHeap {
    pool: BufferPool,
    fingerprint: u64,
    rows: AtomicU64,
    /// Append cursor: the page currently taking inserts.
    tail: Mutex<Option<PageId>>,
    /// Zone maps of *frozen* pages (every page before the tail — the heap
    /// is append-only, so those can never change again). Lets repeated
    /// pruning passes skip pages without re-pinning them through the pool.
    zone_cache: Mutex<HashMap<PageId, PageZone>>,
    /// When attached, every append is logged here before it is
    /// acknowledged: a full-page image on the page's first touch per
    /// checkpoint epoch, a logical record afterwards.
    wal: Mutex<Option<WalSink>>,
    /// Published prefix watermark, packed `(pages << 16) | tail_tuples`
    /// — what [`TableHeap::snapshot`] reads, lock-free.
    visible: AtomicU64,
    /// Rows in the published prefix.
    visible_rows: AtomicU64,
    /// Latest (possibly unpublished) prefix, updated under the tail lock
    /// on every append; promoted to `visible` outside a batch scope.
    pending: AtomicU64,
    /// Open [`AppendBatch`] scopes; > 0 defers publication.
    batch_depth: AtomicU32,
}

impl TableHeap {
    /// Create a fresh (empty) heap file at `path`, truncating any previous
    /// file, with `pool_pages` buffer frames.
    pub fn create(
        path: impl AsRef<Path>,
        fingerprint: u64,
        pool_pages: usize,
    ) -> StoreResult<Self> {
        let path = path.as_ref();
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let disk = DiskManager::open(path)?;
        Ok(TableHeap {
            pool: BufferPool::new(disk, pool_pages),
            fingerprint,
            rows: AtomicU64::new(0),
            tail: Mutex::new(None),
            zone_cache: Mutex::new(HashMap::new()),
            wal: Mutex::new(None),
            visible: AtomicU64::new(0),
            visible_rows: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            batch_depth: AtomicU32::new(0),
        })
    }

    /// Open an existing heap file, validating every page header against
    /// `fingerprint` and counting rows (pages stream through the pool).
    pub fn open(path: impl AsRef<Path>, fingerprint: u64, pool_pages: usize) -> StoreResult<Self> {
        let heap = Self::open_with_count(path, fingerprint, pool_pages, 0)?;
        let mut rows = 0u64;
        for id in 0..heap.page_count() {
            rows += heap.with_page(id, |page| Ok(page.tuple_count() as u64))?;
        }
        heap.rows.store(rows, Ordering::Relaxed);
        heap.refresh_visible()?;
        Ok(heap)
    }

    /// Open an existing heap file **without** scanning it, trusting a
    /// row count cached elsewhere (the database manifest). Pages are
    /// still fingerprint-validated lazily, on every pinned access — this
    /// only skips the eager whole-file pass, keeping `Database::open`
    /// O(manifest) instead of O(data).
    pub fn open_with_count(
        path: impl AsRef<Path>,
        fingerprint: u64,
        pool_pages: usize,
        rows: u64,
    ) -> StoreResult<Self> {
        let disk = DiskManager::open(path)?;
        let pool = BufferPool::new(disk, pool_pages);
        let pages = pool.disk().page_count();
        // Validate the first page eagerly: catches opening under the
        // wrong schema immediately, without reading the whole heap.
        if pages > 0 {
            pool.fetch(0)?.read().validate(fingerprint)?;
        }
        let heap = TableHeap {
            pool,
            fingerprint,
            rows: AtomicU64::new(rows),
            tail: Mutex::new(pages.checked_sub(1)),
            zone_cache: Mutex::new(HashMap::new()),
            wal: Mutex::new(None),
            visible: AtomicU64::new(0),
            visible_rows: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            batch_depth: AtomicU32::new(0),
        };
        heap.refresh_visible()?;
        Ok(heap)
    }

    /// Open a heap file for crash recovery: the file length is rounded
    /// down to whole pages (a torn final allocation is discarded), no
    /// page is validated eagerly (torn pages are expected — redo
    /// re-materializes them) and the row count starts at zero (call
    /// [`TableHeap::recount_rows`] once replay settles). Returns whether
    /// a partial trailing page was trimmed.
    pub fn open_for_recovery(
        path: impl AsRef<Path>,
        fingerprint: u64,
        pool_pages: usize,
    ) -> StoreResult<(Self, bool)> {
        let (disk, trimmed) = DiskManager::open_trimming(path)?;
        let pool = BufferPool::new(disk, pool_pages);
        let pages = pool.disk().page_count();
        Ok((
            TableHeap {
                pool,
                fingerprint,
                rows: AtomicU64::new(0),
                tail: Mutex::new(pages.checked_sub(1)),
                zone_cache: Mutex::new(HashMap::new()),
                wal: Mutex::new(None),
                visible: AtomicU64::new(0),
                visible_rows: AtomicU64::new(0),
                pending: AtomicU64::new(0),
                batch_depth: AtomicU32::new(0),
            },
            trimmed,
        ))
    }

    /// Route every future append through `wal`, tagged as `table`. Also
    /// hooks the buffer pool so dirty write-backs sync the log first
    /// (the write-ahead invariant).
    pub fn attach_wal(&self, wal: Arc<Wal>, table: impl Into<String>) {
        self.pool.attach_wal(Arc::clone(&wal));
        *self.wal.lock().unwrap_or_else(|e| e.into_inner()) = Some(WalSink {
            wal,
            table: table.into(),
        });
    }

    /// The schema fingerprint every page of this heap carries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of pages in the heap file.
    pub fn page_count(&self) -> u32 {
        self.pool.disk().page_count()
    }

    /// Number of records across all pages.
    pub fn row_count(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// The buffer pool (for io accounting and capacity introspection).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Capture the currently published consistent prefix — lock-free, so
    /// a reader opening a snapshot never waits on an in-flight append
    /// (whose tail lock may be held across page I/O).
    pub fn snapshot(&self) -> HeapSnapshot {
        let (pages, tail_tuples) = HeapSnapshot::unpack(self.visible.load(Ordering::Acquire));
        HeapSnapshot {
            pages,
            tail_tuples,
            rows: self.visible_rows.load(Ordering::Acquire),
        }
    }

    /// Open a batch scope: appends made while the guard lives stay
    /// invisible to new snapshots until it drops, making a multi-row
    /// batch visible atomically. (If the batch errors out part-way, the
    /// rows appended so far are published on drop — the same prefix a
    /// crash-recovery replay of the batch would surface.)
    pub fn begin_batch(&self) -> AppendBatch<'_> {
        self.batch_depth.fetch_add(1, Ordering::AcqRel);
        AppendBatch { heap: self }
    }

    /// Promote the latest appended prefix to the published watermark.
    fn publish_pending(&self) {
        self.visible
            .store(self.pending.load(Ordering::Acquire), Ordering::Release);
        self.visible_rows
            .store(self.rows.load(Ordering::Acquire), Ordering::Release);
    }

    /// Record (under the tail lock) that the heap now ends at `pages`
    /// pages with `tail_tuples` records on the last one, and publish it
    /// unless a batch scope is open.
    fn note_append(&self, pages: u32, tail_tuples: u16) {
        self.pending
            .store(HeapSnapshot::pack(pages, tail_tuples), Ordering::Release);
        if self.batch_depth.load(Ordering::Acquire) == 0 {
            self.publish_pending();
        }
    }

    /// Recompute the watermark from the file itself: the whole heap
    /// becomes visible. Used at open and after recovery reshapes pages.
    fn refresh_visible(&self) -> StoreResult<()> {
        let pages = self.page_count();
        let tail_tuples = match pages.checked_sub(1) {
            Some(last) => self.with_page(last, |page| Ok(page.tuple_count()))?,
            None => 0,
        };
        self.pending
            .store(HeapSnapshot::pack(pages, tail_tuples), Ordering::Release);
        self.publish_pending();
        Ok(())
    }

    /// Append one record, spilling into a fresh page when the tail page is
    /// full. The record carries no zone information, so the tail page's
    /// zone map is marked unknown. Returns the page that took the record.
    pub fn append(&self, record: &[u8]) -> StoreResult<PageId> {
        self.append_inner(record, None)
    }

    /// Append one record whose valid-time interval is `[ts, te)` (and
    /// whose first key column, when integer, is `key`), widening the tail
    /// page's zone map. Returns the page that took the record — the heap
    /// position an interval index entry points at.
    pub fn append_with_zone(
        &self,
        record: &[u8],
        ts: i64,
        te: i64,
        key: Option<i64>,
    ) -> StoreResult<PageId> {
        self.append_inner(record, Some((ts, te, key)))
    }

    fn append_inner(
        &self,
        record: &[u8],
        zone: Option<(i64, i64, Option<i64>)>,
    ) -> StoreResult<PageId> {
        let stamp = |page: &mut Page| match zone {
            Some((ts, te, key)) => page.zone_add(ts, te, key),
            None => page.zone_clear(),
        };
        let mut tail = self.tail.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(id) = *tail {
            let guard = self.pool.fetch(id)?;
            // Validate before trusting the header's free-space pointers:
            // a corrupt tail must surface as an error, not as pointer
            // arithmetic inside `Page::insert`.
            let fits = {
                let page = guard.read();
                page.validate(self.fingerprint)?;
                page.fits(record.len())
            };
            if fits {
                let mut page = guard.write();
                let inserted = page.insert(record)?;
                debug_assert!(inserted.is_some(), "free-space check guaranteed fit");
                stamp(&mut page);
                self.log_append(&mut page, id, record, zone)?;
                let tail_tuples = page.tuple_count();
                drop(page);
                self.rows.fetch_add(1, Ordering::Relaxed);
                self.note_append(id + 1, tail_tuples);
                return Ok(id);
            }
        }
        // Tail missing or full: start a new page.
        let mut page = Page::init(self.fingerprint);
        if page.insert(record)?.is_none() {
            return Err(StoreError::Capacity(format!(
                "record of {} bytes does not fit an empty page",
                record.len()
            )));
        }
        stamp(&mut page);
        // The tail lock serializes allocations on this heap, so the next
        // page id is known before `allocate` runs — the WAL record (and
        // the page's LSN) must exist before the page can hit disk.
        let next = self.pool.disk().page_count();
        self.log_append(&mut page, next, record, zone)?;
        let tail_tuples = page.tuple_count();
        let (id, _guard) = self.pool.allocate(page)?;
        debug_assert_eq!(id, next, "tail lock serializes heap allocation");
        *tail = Some(id);
        self.rows.fetch_add(1, Ordering::Relaxed);
        self.note_append(id + 1, tail_tuples);
        Ok(id)
    }

    /// Log one acknowledged append to the attached WAL (no-op when
    /// detached): a full-page image the first time `id` is touched in
    /// the current checkpoint epoch, a logical record afterwards. The
    /// returned LSN is stamped onto the in-memory page so redo can tell
    /// whether the on-disk copy already contains this change.
    fn log_append(
        &self,
        page: &mut Page,
        id: PageId,
        record: &[u8],
        zone: Option<(i64, i64, Option<i64>)>,
    ) -> StoreResult<()> {
        let sink = self.wal.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let Some(sink) = sink else { return Ok(()) };
        let lsn = if sink.wal.first_touch(&sink.table, id) {
            sink.wal.append(&WalRecord::HeapPageImage {
                table: sink.table.clone(),
                fingerprint: self.fingerprint,
                page: id,
                image: Box::new(*page.as_bytes()),
            })?
        } else {
            sink.wal.append(&WalRecord::HeapAppend {
                table: sink.table.clone(),
                fingerprint: self.fingerprint,
                page: id,
                zone,
                record: record.to_vec(),
            })?
        };
        page.set_lsn(lsn);
        Ok(())
    }

    /// Redo one logged full-page image: overwrite (or append) page `id`
    /// unless the resident copy already carries an LSN at or past `lsn`.
    /// A page that fails its checksum is exactly what the image repairs,
    /// so corruption counts as "older". Returns whether it applied.
    pub fn redo_page_image(
        &self,
        id: PageId,
        image: &[u8; PAGE_SIZE],
        lsn: u64,
    ) -> StoreResult<bool> {
        let mut tail = self.tail.lock().unwrap_or_else(|e| e.into_inner());
        let pages = self.page_count();
        if id > pages {
            // A gap means every page in between was lost with the log
            // tail — this image belongs to work that was never
            // acknowledged, so it is safe to skip.
            eprintln!(
                "temporal-store: skipping page image for page {id} past end of heap ({pages} pages)"
            );
            return Ok(false);
        }
        if id < pages {
            match self.pool.fetch(id) {
                Ok(guard) => {
                    if guard.read().lsn() >= lsn {
                        return Ok(false);
                    }
                }
                Err(StoreError::Corrupt(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let mut page = Page::zeroed();
        page.as_bytes_mut().copy_from_slice(image);
        page.set_lsn(lsn);
        self.pool.overwrite(id, page)?;
        self.zone_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
        let pages = self.page_count();
        *tail = pages.checked_sub(1);
        Ok(true)
    }

    /// Redo one logged record append into page `id`, skipping it when
    /// the page's LSN shows the insert already happened. The page must
    /// exist: the WAL images every page before logging logical appends
    /// against it, so a missing page means the log is inconsistent.
    pub fn redo_append(
        &self,
        id: PageId,
        record: &[u8],
        zone: Option<(i64, i64, Option<i64>)>,
        lsn: u64,
    ) -> StoreResult<bool> {
        let _tail = self.tail.lock().unwrap_or_else(|e| e.into_inner());
        if id >= self.page_count() {
            return Err(StoreError::Corrupt(format!(
                "wal replays a record into page {id} of a {}-page heap (missing page image)",
                self.page_count()
            )));
        }
        let guard = self.pool.fetch(id)?;
        let mut page = guard.write();
        if page.lsn() >= lsn {
            return Ok(false);
        }
        if page.insert(record)?.is_none() {
            return Err(StoreError::Corrupt(format!(
                "wal replays a {}-byte record that does not fit page {id}",
                record.len()
            )));
        }
        match zone {
            Some((ts, te, key)) => page.zone_add(ts, te, key),
            None => page.zone_clear(),
        }
        page.set_lsn(lsn);
        Ok(true)
    }

    /// Drop trailing pages that fail their checksum or header validation.
    /// After redo, a still-corrupt tail page holds only writes that were
    /// never acknowledged (frozen pages are never rewritten, and every
    /// covered page was just re-materialized from its logged image), so
    /// recovery trims it. Corruption anywhere else is *not* repaired
    /// here — it surfaces as an error from the next full scan. Returns
    /// the number of pages removed.
    pub fn trim_corrupt_tail(&self) -> StoreResult<u32> {
        let mut tail = self.tail.lock().unwrap_or_else(|e| e.into_inner());
        let mut pages = self.page_count();
        let mut trimmed = 0u32;
        while pages > 0 {
            let last = pages - 1;
            let bad = match self.pool.fetch(last) {
                Ok(guard) => guard.read().validate(self.fingerprint).is_err(),
                Err(StoreError::Corrupt(_)) => true,
                Err(e) => return Err(e),
            };
            if !bad {
                break;
            }
            eprintln!(
                "temporal-store: dropping torn page {last} of {} (unacknowledged writes)",
                self.pool.disk().path().display()
            );
            self.pool.discard_from(last);
            self.pool.disk().truncate_pages(last)?;
            self.zone_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&last);
            trimmed += 1;
            pages = last;
        }
        *tail = pages.checked_sub(1);
        Ok(trimmed)
    }

    /// Recount rows with a full validated scan (recovery may have grown,
    /// repaired or trimmed pages since the cached count was taken).
    pub fn recount_rows(&self) -> StoreResult<u64> {
        let mut rows = 0u64;
        for id in 0..self.page_count() {
            rows += self.with_page(id, |page| Ok(page.tuple_count() as u64))?;
        }
        self.rows.store(rows, Ordering::Relaxed);
        self.refresh_visible()?;
        Ok(rows)
    }

    /// The zone map of page `id`, from the header alone — no record is
    /// decoded. Frozen pages (everything before the append tail) are
    /// cached, so a pruning pass over a previously-scanned heap touches
    /// the pool only for pages it has never seen.
    pub fn zone_of(&self, id: PageId) -> StoreResult<PageZone> {
        if let Some(z) = self
            .zone_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
        {
            return Ok(*z);
        }
        // Only pages strictly before the tail are immutable; the decision
        // is taken *before* reading, which is safe because a page that is
        // frozen now can never be written again.
        let frozen = {
            let tail = self.tail.lock().unwrap_or_else(|e| e.into_inner());
            tail.is_some_and(|t| id < t)
        };
        let zone = self.with_page(id, |page| Ok(page.zone()))?;
        if frozen {
            self.zone_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, zone);
        }
        Ok(zone)
    }

    /// Run `f` over the pinned page `id` (validated). The pin is released
    /// when `f` returns, so a sequential caller streams pages through the
    /// pool rather than accumulating them.
    pub fn with_page<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&Page) -> StoreResult<R>,
    ) -> StoreResult<R> {
        let guard = self.pool.fetch(id)?;
        let page = guard.read();
        page.validate(self.fingerprint)?;
        f(&page)
    }

    /// Write back dirty pages and sync the file.
    pub fn flush(&self) -> StoreResult<()> {
        self.pool.flush_all()
    }

    /// Flush and close the underlying pool, surfacing any I/O error the
    /// silent drop path would swallow.
    pub fn close(&self) -> StoreResult<()> {
        self.pool.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn heap_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("talign_store_heap_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_spills_across_pages_and_reopens() {
        let path = heap_path("spill.heap");
        let heap = TableHeap::create(&path, 0xfeed, 2).unwrap();
        let record = [7u8; 512];
        for _ in 0..40 {
            heap.append(&record).unwrap();
        }
        assert_eq!(heap.row_count(), 40);
        assert!(heap.page_count() > 1, "512-byte records must spill");
        heap.flush().unwrap();
        let pages = heap.page_count();
        drop(heap);

        let heap = TableHeap::open(&path, 0xfeed, 2).unwrap();
        assert_eq!(heap.row_count(), 40);
        assert_eq!(heap.page_count(), pages);
        let mut seen = 0;
        for id in 0..heap.page_count() {
            seen += heap
                .with_page(id, |p| {
                    for r in p.records() {
                        assert_eq!(r.unwrap(), &record[..]);
                    }
                    Ok(p.tuple_count() as u64)
                })
                .unwrap();
        }
        assert_eq!(seen, 40);
        // Appends continue on the reopened tail page without a new page
        // until it fills.
        let before = heap.page_count();
        heap.append(&[1u8; 8]).unwrap();
        assert_eq!(heap.page_count(), before);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_fingerprint_refuses_to_open() {
        let path = heap_path("fp.heap");
        let heap = TableHeap::create(&path, 1, 2).unwrap();
        heap.append(b"x").unwrap();
        heap.flush().unwrap();
        drop(heap);
        assert!(matches!(
            TableHeap::open(&path, 2, 2),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zone_maps_persist_and_zone_of_caches_frozen_pages() {
        use crate::page::ZoneBounds;
        let path = heap_path("zones.heap");
        let heap = TableHeap::create(&path, 5, 2).unwrap();
        let record = [3u8; 512];
        for i in 0..40i64 {
            heap.append_with_zone(&record, i, i + 10, Some(i % 4))
                .unwrap();
        }
        heap.flush().unwrap();
        let pages = heap.page_count();
        assert!(pages > 1);
        drop(heap);

        let heap = TableHeap::open(&path, 5, 2).unwrap();
        // Every page's zone is readable header-only and consistent with
        // the appended intervals; rows i live on page i/7 (7 per page).
        let z0 = heap.zone_of(0).unwrap();
        assert!(z0.time_valid && z0.key_valid);
        assert_eq!(z0.min_ts, 0);
        assert_eq!(z0.max_te, 6 + 10);
        assert!(z0.may_match(&ZoneBounds::as_of(3)));
        let zl = heap.zone_of(pages - 1).unwrap();
        assert!(!zl.may_match(&ZoneBounds::as_of(3)));
        // Frozen pages come from the cache on the second read even after
        // the pool evicted them (pool=2 < pages).
        let io_before = heap.pool().io_reads();
        for id in 0..pages {
            heap.zone_of(id).unwrap();
        }
        let io_mid = heap.pool().io_reads();
        for id in 0..pages - 1 {
            heap.zone_of(id).unwrap();
        }
        assert_eq!(
            heap.pool().io_reads(),
            io_mid,
            "frozen zones must be cached"
        );
        assert!(io_mid > io_before);
        // A plain (zone-less) append poisons only the tail page's zone.
        heap.append(&[9u8; 8]).unwrap();
        let z_tail = heap.zone_of(heap.page_count() - 1).unwrap();
        assert!(!z_tail.time_valid);
        assert!(z_tail.may_match(&ZoneBounds::as_of(-999)));
        std::fs::remove_file(&path).unwrap();
    }

    fn wal_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("talign_store_heap_wal")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn attached_wal_gets_an_image_then_logical_records() {
        let dir = wal_dir("fpi");
        let (wal, _) = Wal::open(&dir).unwrap();
        let heap = TableHeap::create(dir.join("t.heap"), 7, 4).unwrap();
        heap.attach_wal(Arc::new(wal), "t");
        for i in 0..3i64 {
            heap.append_with_zone(&[i as u8; 16], i, i + 1, Some(i))
                .unwrap();
        }
        drop(heap);
        let (_, scan) = Wal::open(&dir).unwrap();
        assert!(!scan.tail_truncated);
        let recs: Vec<&WalRecord> = scan.records.iter().map(|(_, r)| r).collect();
        assert_eq!(recs.len(), 3);
        assert!(
            matches!(recs[0], WalRecord::HeapPageImage { table, page: 0, .. } if table == "t"),
            "first touch of a page logs its full image"
        );
        for rec in &recs[1..] {
            assert!(matches!(
                rec,
                WalRecord::HeapAppend { table, page: 0, zone: Some(_), .. } if table == "t"
            ));
        }
    }

    #[test]
    fn redo_rebuilds_unflushed_appends_and_is_idempotent() {
        let dir = wal_dir("redo");
        let (wal, _) = Wal::open(&dir).unwrap();
        let wal = Arc::new(wal);
        let path = dir.join("t.heap");
        let heap = TableHeap::create(&path, 9, 4).unwrap();
        heap.attach_wal(Arc::clone(&wal), "t");
        let record = [5u8; 900];
        for i in 0..10i64 {
            heap.append_with_zone(&record, i, i + 2, None).unwrap();
        }
        wal.commit().unwrap();
        // Crash: the heap's dirty pages never reach disk.
        std::mem::forget(heap);
        drop(wal);

        let (_, scan) = Wal::open(&dir).unwrap();
        let (heap, trimmed) = TableHeap::open_for_recovery(&path, 9, 4).unwrap();
        assert!(!trimmed);
        for _ in 0..2 {
            // The second pass must be a no-op: LSNs make redo idempotent.
            for (lsn, rec) in &scan.records {
                match rec {
                    WalRecord::HeapPageImage { page, image, .. } => {
                        heap.redo_page_image(*page, image, *lsn).unwrap();
                    }
                    WalRecord::HeapAppend {
                        page, zone, record, ..
                    } => {
                        heap.redo_append(*page, record, *zone, *lsn).unwrap();
                    }
                    other => panic!("unexpected record {other:?}"),
                }
            }
            assert_eq!(heap.recount_rows().unwrap(), 10);
        }
        let mut seen = 0usize;
        for id in 0..heap.page_count() {
            heap.with_page(id, |p| {
                for r in p.records() {
                    assert_eq!(r.unwrap(), &record[..]);
                    seen += 1;
                }
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(seen, 10);
        heap.close().unwrap();
    }

    #[test]
    fn trim_corrupt_tail_drops_only_the_torn_last_page() {
        use std::io::{Seek, SeekFrom, Write};
        let path = heap_path("torn.heap");
        let heap = TableHeap::create(&path, 3, 4).unwrap();
        let record = [1u8; 900];
        for _ in 0..10 {
            heap.append(&record).unwrap();
        }
        assert!(heap.page_count() >= 2);
        heap.close().unwrap();
        let rows_before_last = {
            let heap = TableHeap::open(&path, 3, 4).unwrap();
            let last = heap.page_count() - 1;
            heap.row_count()
                - heap
                    .with_page(last, |p| Ok(p.tuple_count() as u64))
                    .unwrap()
        };
        // Tear the last page: overwrite its second half with garbage.
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let len = f.metadata().unwrap().len();
        f.seek(SeekFrom::Start(len - (PAGE_SIZE as u64) / 2))
            .unwrap();
        f.write_all(&vec![0xAB; PAGE_SIZE / 2]).unwrap();
        drop(f);

        let (heap, trimmed) = TableHeap::open_for_recovery(&path, 3, 4).unwrap();
        assert!(!trimmed);
        assert_eq!(heap.trim_corrupt_tail().unwrap(), 1);
        assert_eq!(heap.recount_rows().unwrap(), rows_before_last);
        // Appends keep working after the trim.
        heap.append(&record).unwrap();
        assert_eq!(heap.row_count(), rows_before_last + 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshots_expose_a_stable_prefix() {
        let path = heap_path("snap.heap");
        let heap = TableHeap::create(&path, 2, 4).unwrap();
        assert_eq!(heap.snapshot(), HeapSnapshot::EMPTY);
        let record = [1u8; 512];
        for _ in 0..10 {
            heap.append(&record).unwrap();
        }
        let snap = heap.snapshot();
        assert_eq!(snap.rows, 10);
        assert_eq!(snap.pages, heap.page_count());
        // The snapshot is immune to later appends.
        for _ in 0..10 {
            heap.append(&record).unwrap();
        }
        assert_eq!(snap.rows, 10);
        let later = heap.snapshot();
        assert_eq!(later.rows, 20);
        assert!(later.pages >= snap.pages);
        // Visible-tuple arithmetic: full pages below the tail, capped on
        // the tail, nothing past it.
        let mut total = 0u64;
        for id in 0..heap.page_count() {
            let on_page = heap.with_page(id, |p| Ok(p.tuple_count())).unwrap();
            let visible = match snap.visible_tuples(id) {
                None => on_page,
                Some(k) => k.min(on_page),
            };
            total += visible as u64;
        }
        assert_eq!(total, 10, "snapshot caps decoding at its prefix");
        assert!(snap.sees_page(0));
        assert!(!snap.sees_page(heap.page_count()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_scope_publishes_atomically() {
        let path = heap_path("batch.heap");
        let heap = TableHeap::create(&path, 2, 4).unwrap();
        heap.append(&[0u8; 64]).unwrap();
        let batch = heap.begin_batch();
        for _ in 0..5 {
            heap.append(&[1u8; 64]).unwrap();
        }
        // Mid-batch: new snapshots still see the pre-batch prefix.
        assert_eq!(heap.snapshot().rows, 1);
        drop(batch);
        assert_eq!(heap.snapshot().rows, 6);
        // Nested scopes publish only at the outermost drop.
        let outer = heap.begin_batch();
        {
            let inner = heap.begin_batch();
            heap.append(&[2u8; 64]).unwrap();
            drop(inner);
            assert_eq!(heap.snapshot().rows, 6);
        }
        heap.append(&[3u8; 64]).unwrap();
        drop(outer);
        assert_eq!(heap.snapshot().rows, 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_restores_the_watermark() {
        let path = heap_path("snap_reopen.heap");
        let heap = TableHeap::create(&path, 4, 4).unwrap();
        for _ in 0..7 {
            heap.append(&[9u8; 128]).unwrap();
        }
        heap.close().unwrap();
        let pages = heap.page_count();
        drop(heap);
        // Fast path (manifest-trusted count) and slow path both publish
        // the full heap.
        let heap = TableHeap::open_with_count(&path, 4, 4, 7).unwrap();
        let snap = heap.snapshot();
        assert_eq!((snap.pages, snap.rows), (pages, 7));
        drop(heap);
        let heap = TableHeap::open(&path, 4, 4).unwrap();
        let snap = heap.snapshot();
        assert_eq!((snap.pages, snap.rows), (pages, 7));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_previous_contents() {
        let path = heap_path("trunc.heap");
        let heap = TableHeap::create(&path, 1, 2).unwrap();
        heap.append(b"old").unwrap();
        heap.flush().unwrap();
        drop(heap);
        let heap = TableHeap::create(&path, 1, 2).unwrap();
        assert_eq!(heap.row_count(), 0);
        assert_eq!(heap.page_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
