//! The write-ahead log: one append-only `wal.log` per database directory.
//!
//! Every mutation of a persisted database is logged *before* its effect
//! is acknowledged, so `Database::open` can redo the tail of history that
//! never reached the heap files. The log is redo-only (ARIES without
//! undo: appends are the only in-place page mutation, and an uncommitted
//! append surviving replay is harmless — it re-creates a prefix of the
//! in-flight batch).
//!
//! ## Framing
//!
//! The file starts with an 8-byte header (`"TWAL"` magic + format
//! version), followed by records framed as
//!
//! ```text
//! [len: u32][crc32c: u32][lsn: u64][payload: len bytes]
//! ```
//!
//! where the CRC covers the LSN and payload. LSNs increase monotonically
//! and are never reused, even across checkpoints — a page stamped with
//! LSN `n` proves every record ≤ `n` is already applied to it, which is
//! what makes replay idempotent. The scan on open stops at the first
//! frame that is short, oversized, fails its CRC, or fails to decode,
//! truncates the file there, and warns: a torn tail degrades to losing
//! unacknowledged work, never to refusing to open.
//!
//! ## Full-page images
//!
//! The first record touching a heap page since the last checkpoint is a
//! [`WalRecord::HeapPageImage`] (the complete post-modification page);
//! later appends to the same page log the record bytes alone. Replay
//! therefore always restores a torn or partially written page wholesale
//! before logical appends land on it — the same reason PostgreSQL writes
//! full pages after checkpoints. [`Wal::first_touch`] tracks the set of
//! imaged pages, cleared at each checkpoint (and per table on
//! create/drop, so a replaced table's fresh pages are re-imaged).
//!
//! ## Checkpoints and sync policy
//!
//! A checkpoint is sharp: the caller flushes every heap and index and
//! saves the manifest *first*, then [`Wal::checkpoint`] atomically
//! replaces the log with a fresh one holding a single
//! [`WalRecord::Checkpoint`] (temp file + fsync + rename). A crash
//! between the flush and the swap merely replays records whose page LSNs
//! already mark them applied. [`SyncMode`] governs when the log is
//! fsynced: `off` never (fast, no crash guarantee), `commit` once per
//! logical operation, `always` after every record. Regardless of mode,
//! the buffer pool syncs the log before writing back a dirty page — the
//! write-*ahead* invariant — except under `off`, which explicitly opts
//! out of torn-page protection.
//!
//! ## Group commit
//!
//! Concurrent committers share fsyncs. Every append records its LSN in
//! `last_lsn`; every successful fsync advances the `synced_lsn`
//! watermark to the highest LSN that was in the file when the sync
//! started. [`Wal::commit`] is therefore "wait until
//! `synced_lsn ≥ my last append"`: the first committer to arrive
//! becomes the *flusher* (elected under a small mutex), issues one
//! `fsync`, advances the watermark, and wakes every waiter on the
//! condvar; committers whose LSN the flush covered return without
//! touching the disk at all. Under `sync_mode=always` the same election
//! runs per record, so even the paranoid mode batches concurrent
//! writers into shared syncs. One fsync can thus retire any number of
//! concurrent commits — `io_syncs / commits < 1` as soon as two
//! sessions commit at once.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crate::crc32c::{crc32c, crc32c_append};
use crate::error::{StoreError, StoreResult};
use crate::failpoints::{self, Action};
use crate::page::{PageId, PAGE_SIZE};

/// WAL file name inside a database directory.
pub const WAL_FILE: &str = "wal.log";

const WAL_MAGIC: u32 = 0x5457_414C; // "TWAL"
const WAL_VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
const FRAME_HEADER: usize = 16; // len + crc + lsn
/// Upper bound on a plausible payload — anything larger in a frame
/// header means the length field itself is garbage.
const MAX_PAYLOAD: u32 = (PAGE_SIZE as u32) * 4;

/// When the log is fsynced. Parsed from the `sync_mode` GUC or the
/// `TEMPORAL_SYNC_MODE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SyncMode {
    /// Never fsync the log: fastest, survives process crashes that keep
    /// the OS page cache, but an OS crash or power loss may lose or tear
    /// acknowledged work.
    Off = 0,
    /// Fsync once per logical operation (the default).
    Commit = 1,
    /// Fsync after every record — the paranoid setting CI uses to catch
    /// ordering bugs that only matter when syncs are real.
    Always = 2,
}

impl SyncMode {
    /// Parse a GUC/env spelling; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<SyncMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "false" | "0" => Some(SyncMode::Off),
            "commit" | "on" | "true" | "1" => Some(SyncMode::Commit),
            "always" => Some(SyncMode::Always),
            _ => None,
        }
    }

    /// The default mode: `TEMPORAL_SYNC_MODE` if set and valid, else
    /// `commit`. Read once per process.
    pub fn from_env() -> SyncMode {
        static DEFAULT: OnceLock<SyncMode> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            std::env::var("TEMPORAL_SYNC_MODE")
                .ok()
                .and_then(|s| SyncMode::parse(&s))
                .unwrap_or(SyncMode::Commit)
        })
    }

    fn from_u8(v: u8) -> SyncMode {
        match v {
            0 => SyncMode::Off,
            2 => SyncMode::Always,
            _ => SyncMode::Commit,
        }
    }
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncMode::Off => "off",
            SyncMode::Commit => "commit",
            SyncMode::Always => "always",
        })
    }
}

/// One logged mutation. The payload encoding is a tag byte followed by
/// little-endian fields; strings are `u16`-length-prefixed UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A table was created or replaced: the manifest entry to (re)apply.
    /// Logged after the heap/index files are in place, so replay skips
    /// entries whose files vanished (the create never completed).
    TableUpsert {
        name: String,
        file: String,
        fingerprint: u64,
        rows: u64,
        schema: String,
        index: Option<String>,
    },
    /// A table was dropped: remove the manifest entry and its files.
    TableDrop { name: String },
    /// One record appended to an already-imaged heap page. Carries the
    /// table's schema fingerprint so replay never applies a stale
    /// record to a replaced (re-fingerprinted) heap.
    HeapAppend {
        table: String,
        fingerprint: u64,
        page: PageId,
        /// Zone-map delta: `None` poisons the page zone, `Some` widens it.
        zone: Option<(i64, i64, Option<i64>)>,
        record: Vec<u8>,
    },
    /// Full post-modification image of a heap page — the first record
    /// touching the page since the last checkpoint.
    HeapPageImage {
        table: String,
        fingerprint: u64,
        page: PageId,
        image: Box<[u8; PAGE_SIZE]>,
    },
    /// Everything before this record is flushed and synced.
    Checkpoint,
}

const TAG_TABLE_UPSERT: u8 = 1;
const TAG_TABLE_DROP: u8 = 2;
const TAG_HEAP_APPEND: u8 = 3;
const TAG_HEAP_PAGE_IMAGE: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;

fn put_str(out: &mut Vec<u8>, s: &str) -> StoreResult<()> {
    let len = u16::try_from(s.len()).map_err(|_| {
        StoreError::Capacity(format!("WAL string field too long: {} bytes", s.len()))
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::Corrupt("WAL record payload truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> StoreResult<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> StoreResult<i64> {
        Ok(self.u64()? as i64)
    }

    fn str(&mut self) -> StoreResult<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("WAL string field is not UTF-8".into()))
    }

    fn done(&self) -> StoreResult<()> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Corrupt(format!(
                "WAL record has {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl WalRecord {
    fn encode(&self) -> StoreResult<Vec<u8>> {
        let mut out = Vec::with_capacity(64);
        match self {
            WalRecord::TableUpsert {
                name,
                file,
                fingerprint,
                rows,
                schema,
                index,
            } => {
                out.push(TAG_TABLE_UPSERT);
                put_str(&mut out, name)?;
                put_str(&mut out, file)?;
                out.extend_from_slice(&fingerprint.to_le_bytes());
                out.extend_from_slice(&rows.to_le_bytes());
                put_str(&mut out, schema)?;
                match index {
                    Some(ix) => {
                        out.push(1);
                        put_str(&mut out, ix)?;
                    }
                    None => out.push(0),
                }
            }
            WalRecord::TableDrop { name } => {
                out.push(TAG_TABLE_DROP);
                put_str(&mut out, name)?;
            }
            WalRecord::HeapAppend {
                table,
                fingerprint,
                page,
                zone,
                record,
            } => {
                out.push(TAG_HEAP_APPEND);
                put_str(&mut out, table)?;
                out.extend_from_slice(&fingerprint.to_le_bytes());
                out.extend_from_slice(&page.to_le_bytes());
                match zone {
                    None => out.push(0),
                    Some((ts, te, key)) => {
                        out.push(if key.is_some() { 2 } else { 1 });
                        out.extend_from_slice(&ts.to_le_bytes());
                        out.extend_from_slice(&te.to_le_bytes());
                        if let Some(k) = key {
                            out.extend_from_slice(&k.to_le_bytes());
                        }
                    }
                }
                out.extend_from_slice(&(record.len() as u32).to_le_bytes());
                out.extend_from_slice(record);
            }
            WalRecord::HeapPageImage {
                table,
                fingerprint,
                page,
                image,
            } => {
                out.push(TAG_HEAP_PAGE_IMAGE);
                put_str(&mut out, table)?;
                out.extend_from_slice(&fingerprint.to_le_bytes());
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&image[..]);
            }
            WalRecord::Checkpoint => out.push(TAG_CHECKPOINT),
        }
        Ok(out)
    }

    fn decode(payload: &[u8]) -> StoreResult<WalRecord> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let rec = match c.u8()? {
            TAG_TABLE_UPSERT => {
                let name = c.str()?;
                let file = c.str()?;
                let fingerprint = c.u64()?;
                let rows = c.u64()?;
                let schema = c.str()?;
                let index = match c.u8()? {
                    0 => None,
                    1 => Some(c.str()?),
                    f => {
                        return Err(StoreError::Corrupt(format!(
                            "WAL table-upsert has bad index flag {f}"
                        )))
                    }
                };
                WalRecord::TableUpsert {
                    name,
                    file,
                    fingerprint,
                    rows,
                    schema,
                    index,
                }
            }
            TAG_TABLE_DROP => WalRecord::TableDrop { name: c.str()? },
            TAG_HEAP_APPEND => {
                let table = c.str()?;
                let fingerprint = c.u64()?;
                let page = c.u32()?;
                let zone = match c.u8()? {
                    0 => None,
                    1 => Some((c.i64()?, c.i64()?, None)),
                    2 => {
                        let (ts, te) = (c.i64()?, c.i64()?);
                        Some((ts, te, Some(c.i64()?)))
                    }
                    f => {
                        return Err(StoreError::Corrupt(format!(
                            "WAL heap-append has bad zone flag {f}"
                        )))
                    }
                };
                let len = c.u32()? as usize;
                let record = c.take(len)?.to_vec();
                WalRecord::HeapAppend {
                    table,
                    fingerprint,
                    page,
                    zone,
                    record,
                }
            }
            TAG_HEAP_PAGE_IMAGE => {
                let table = c.str()?;
                let fingerprint = c.u64()?;
                let page = c.u32()?;
                let mut image = Box::new([0u8; PAGE_SIZE]);
                image.copy_from_slice(c.take(PAGE_SIZE)?);
                WalRecord::HeapPageImage {
                    table,
                    fingerprint,
                    page,
                    image,
                }
            }
            TAG_CHECKPOINT => WalRecord::Checkpoint,
            t => return Err(StoreError::Corrupt(format!("WAL record has bad tag {t}"))),
        };
        c.done()?;
        Ok(rec)
    }
}

/// What [`Wal::open`] found in an existing log.
#[derive(Debug)]
pub struct WalScan {
    /// Records after the last checkpoint, in log order, with their LSNs.
    pub records: Vec<(u64, WalRecord)>,
    /// Whether a torn/corrupt tail was truncated away.
    pub tail_truncated: bool,
}

/// Named snapshot of the log's observability counters — what
/// `Database::wal_stats` and the server's `.stats` report. The
/// group-commit amortization ratio is `syncs as f64 / commits as f64`
/// (below 1 means concurrent committers shared fsyncs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit durability points requested ([`Wal::commit`]).
    pub commits: u64,
    /// Fsyncs issued on the log.
    pub syncs: u64,
    /// Frame bytes appended since open (never resets).
    pub bytes: u64,
    /// Checkpoints taken since open.
    pub checkpoints: u64,
}

impl WalStats {
    /// Fsyncs per commit — the group-commit amortization ratio. Reports
    /// 0.0 before the first commit.
    pub fn group_commit_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.syncs as f64 / self.commits as f64
        }
    }
}

#[derive(Debug)]
struct WalInner {
    file: File,
    next_lsn: u64,
    bytes_since_checkpoint: u64,
    /// Heap pages already carrying a full-page image this checkpoint epoch.
    imaged: HashSet<(String, PageId)>,
}

/// The write-ahead log of one database directory. Thread-safe; cheap to
/// share behind an `Arc`.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    mode: AtomicU8,
    appended_records: AtomicU64,
    /// Frame bytes appended since open (headers included) — unlike the
    /// per-epoch `bytes_since_checkpoint`, this never resets.
    appended_bytes: AtomicU64,
    syncs: AtomicU64,
    /// Commit durability points requested via [`Wal::commit`] — the
    /// denominator of the group-commit amortization ratio.
    commits: AtomicU64,
    /// Checkpoints taken since open.
    checkpoints: AtomicU64,
    /// Highest LSN handed out by [`Wal::append`].
    last_lsn: AtomicU64,
    /// Group-commit watermark: every record with LSN ≤ this is fsynced.
    synced_lsn: AtomicU64,
    /// Flusher election flag: `true` while one committer is inside the
    /// shared fsync on behalf of the group.
    flushing: Mutex<bool>,
    /// Wakes committers parked behind the elected flusher.
    flushed: Condvar,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// The log path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(WAL_FILE)
    }

    /// Open (creating if absent) the log of `dir` and scan it. The scan
    /// validates every frame; the first torn or corrupt one truncates the
    /// file there with a warning on stderr — recovery then replays
    /// whatever consistent prefix survived.
    pub fn open(dir: &Path) -> StoreResult<(Wal, WalScan)> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_in(dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(&WAL_MAGIC.to_le_bytes())?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            bytes.extend_from_slice(&WAL_MAGIC.to_le_bytes());
            bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        }
        if bytes.len() < HEADER_LEN as usize
            || bytes[0..4] != WAL_MAGIC.to_le_bytes()
            || bytes[4..8] != WAL_VERSION.to_le_bytes()
        {
            // A mangled header means nothing in the file can be trusted;
            // start a fresh log rather than refuse to open.
            eprintln!(
                "temporal-store: WAL header of {} is corrupt — starting a fresh log",
                path.display()
            );
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&WAL_MAGIC.to_le_bytes())?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            // Keep `bytes` mirroring the file so the scan below lands on
            // `valid_end == HEADER_LEN` — seeking to 0 here would let the
            // next append overwrite the header we just rewrote.
            bytes.clear();
            bytes.extend_from_slice(&WAL_MAGIC.to_le_bytes());
            bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        }
        let mut records: Vec<(u64, WalRecord)> = Vec::new();
        let mut max_lsn = 0u64;
        let mut pos = (HEADER_LEN as usize).min(bytes.len());
        let mut valid_end = pos;
        let mut tail_truncated = false;
        while pos + FRAME_HEADER <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let lsn = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8 bytes"));
            if len > MAX_PAYLOAD || pos + FRAME_HEADER + len as usize > bytes.len() {
                tail_truncated = true;
                break;
            }
            let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize];
            if crc32c_append(crc32c(&lsn.to_le_bytes()), payload) != crc {
                tail_truncated = true;
                break;
            }
            let rec = match WalRecord::decode(payload) {
                Ok(r) => r,
                Err(_) => {
                    tail_truncated = true;
                    break;
                }
            };
            if matches!(rec, WalRecord::Checkpoint) {
                records.clear();
            } else {
                records.push((lsn, rec));
            }
            max_lsn = max_lsn.max(lsn);
            pos += FRAME_HEADER + len as usize;
            valid_end = pos;
        }
        if pos != bytes.len() && pos + FRAME_HEADER > bytes.len() {
            // A dangling partial frame header is a torn tail too.
            tail_truncated = true;
        }
        if tail_truncated {
            eprintln!(
                "temporal-store: WAL tail of {} is torn or corrupt at offset {valid_end} — \
                 truncating ({} intact records kept)",
                path.display(),
                records.len()
            );
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))?;
        let wal = Wal {
            path,
            mode: AtomicU8::new(SyncMode::from_env() as u8),
            appended_records: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            last_lsn: AtomicU64::new(max_lsn),
            // Everything already in the file is as durable as it will
            // ever be, so open starts with the watermark caught up.
            synced_lsn: AtomicU64::new(max_lsn),
            flushing: Mutex::new(false),
            flushed: Condvar::new(),
            inner: Mutex::new(WalInner {
                file,
                next_lsn: max_lsn + 1,
                bytes_since_checkpoint: (valid_end as u64).saturating_sub(HEADER_LEN),
                imaged: HashSet::new(),
            }),
        };
        let scan = WalScan {
            records,
            tail_truncated,
        };
        Ok((wal, scan))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current sync policy.
    pub fn mode(&self) -> SyncMode {
        SyncMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Change the sync policy (the `sync_mode` GUC).
    pub fn set_mode(&self, mode: SyncMode) {
        self.mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Records appended since open (observability).
    pub fn records_appended(&self) -> u64 {
        self.appended_records.load(Ordering::Relaxed)
    }

    /// Fsyncs issued on the log since open (observability).
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Commit durability points requested since open (observability):
    /// `syncs() / commits()` below 1 is group commit amortizing fsyncs.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Frame bytes appended since open (never resets, unlike
    /// [`Wal::bytes_since_checkpoint`]).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes.load(Ordering::Relaxed)
    }

    /// Checkpoints taken since open.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// One-shot snapshot of the log's observability counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            commits: self.commits(),
            syncs: self.syncs(),
            bytes: self.appended_bytes(),
            checkpoints: self.checkpoints(),
        }
    }

    /// Highest LSN handed out so far.
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn.load(Ordering::SeqCst)
    }

    /// The group-commit watermark: every record with LSN ≤ this is
    /// durable on disk (modulo `sync_mode=off`, which never syncs).
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn.load(Ordering::SeqCst)
    }

    /// Log bytes written since the last checkpoint — the
    /// `wal_checkpoint_pages` trigger reads this.
    pub fn bytes_since_checkpoint(&self) -> u64 {
        self.lock().bytes_since_checkpoint
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record that `page` of `table` is about to be modified; returns
    /// `true` when this is its first touch this checkpoint epoch, i.e.
    /// the caller must log a full-page image instead of a logical append.
    pub fn first_touch(&self, table: &str, page: PageId) -> bool {
        self.lock().imaged.insert((table.to_string(), page))
    }

    /// Append one record, returning its LSN. Under `always` the record
    /// is fsynced before returning; under `commit` the caller ends the
    /// logical operation with [`Wal::commit`].
    pub fn append(&self, rec: &WalRecord) -> StoreResult<u64> {
        if failpoints::power_cut() {
            return Err(failpoints::power_cut_error());
        }
        let payload = rec.encode()?;
        // Creating or dropping a table invalidates any imaged-page
        // bookkeeping for its name: a replacement heap's pages must be
        // re-imaged before logical appends may target them.
        let reset_table = match rec {
            WalRecord::TableUpsert { name, .. } | WalRecord::TableDrop { name } => {
                Some(name.clone())
            }
            _ => None,
        };
        let mut inner = self.lock();
        let lsn = inner.next_lsn;
        let crc = crc32c_append(crc32c(&lsn.to_le_bytes()), &payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&lsn.to_le_bytes());
        frame.extend_from_slice(&payload);
        match failpoints::hit("wal::append") {
            Some(Action::Crash) => {
                #[cfg(feature = "failpoints")]
                failpoints::trip_power_cut();
                return Err(failpoints::power_cut_error());
            }
            Some(Action::Torn { keep }) => {
                let keep = keep.min(frame.len());
                inner.file.write_all(&frame[..keep])?;
                #[cfg(feature = "failpoints")]
                failpoints::trip_power_cut();
                return Err(failpoints::power_cut_error());
            }
            Some(Action::FlipBit { offset }) => {
                let off = offset % frame.len();
                frame[off] ^= 1;
            }
            None => {}
        }
        inner.file.write_all(&frame)?;
        inner.next_lsn += 1;
        inner.bytes_since_checkpoint += frame.len() as u64;
        if let Some(name) = reset_table {
            inner.imaged.retain(|(t, _)| *t != name);
        }
        self.last_lsn.store(lsn, Ordering::SeqCst);
        self.appended_records.fetch_add(1, Ordering::Relaxed);
        self.appended_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if self.mode() == SyncMode::Always {
            // Per-record durability, but through the group flusher:
            // concurrent appenders share one fsync instead of queueing
            // their own.
            drop(inner);
            self.commit_upto(lsn)?;
        }
        Ok(lsn)
    }

    fn sync_locked(&self, inner: &mut WalInner) -> StoreResult<()> {
        if failpoints::power_cut() {
            return Err(failpoints::power_cut_error());
        }
        if let Some(Action::Crash | Action::Torn { .. }) = failpoints::hit("wal::sync") {
            #[cfg(feature = "failpoints")]
            failpoints::trip_power_cut();
            return Err(failpoints::power_cut_error());
        }
        // Every record below `next_lsn` is in the file (writes happen
        // under the same lock we hold), so a successful sync makes the
        // watermark exactly `next_lsn - 1`.
        let durable_upto = inner.next_lsn.saturating_sub(1);
        inner.file.sync_data()?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.synced_lsn.fetch_max(durable_upto, Ordering::SeqCst);
        Ok(())
    }

    /// One shared fsync on behalf of the commit group. The inner lock is
    /// held only long enough to duplicate the file handle and read the
    /// covered watermark; the fsync itself runs *outside* it, so
    /// concurrent appenders keep writing records into the log while the
    /// disk works — which is exactly what lets the *next* flush cover
    /// the whole group that formed during this one.
    fn sync_group(&self) -> StoreResult<()> {
        if failpoints::power_cut() {
            return Err(failpoints::power_cut_error());
        }
        if let Some(Action::Crash | Action::Torn { .. }) = failpoints::hit("wal::sync") {
            #[cfg(feature = "failpoints")]
            failpoints::trip_power_cut();
            return Err(failpoints::power_cut_error());
        }
        let (file, durable_upto) = {
            let inner = self.lock();
            (inner.file.try_clone()?, inner.next_lsn.saturating_sub(1))
        };
        file.sync_data()?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.synced_lsn.fetch_max(durable_upto, Ordering::SeqCst);
        Ok(())
    }

    fn lock_flushing(&self) -> std::sync::MutexGuard<'_, bool> {
        self.flushing.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Group-commit core: return once every record with LSN ≤ `target`
    /// is fsynced. The first arrival is elected flusher and syncs on
    /// behalf of the group; later arrivals park on the condvar and
    /// usually find the watermark already past their target when they
    /// wake. A flusher error propagates to the flusher itself, while
    /// woken waiters re-run the election and surface their own error.
    fn commit_upto(&self, target: u64) -> StoreResult<()> {
        loop {
            if self.synced_lsn.load(Ordering::SeqCst) >= target {
                return Ok(());
            }
            let mut flushing = self.lock_flushing();
            // Re-check under the election lock: the previous flusher may
            // have covered us between the atomic load and the lock.
            if self.synced_lsn.load(Ordering::SeqCst) >= target {
                return Ok(());
            }
            if !*flushing {
                *flushing = true;
                drop(flushing);
                let result = self.sync_group();
                let mut flushing = self.lock_flushing();
                *flushing = false;
                self.flushed.notify_all();
                drop(flushing);
                result?;
            } else {
                let guard = self
                    .flushed
                    .wait(flushing)
                    .unwrap_or_else(|e| e.into_inner());
                drop(guard);
            }
        }
    }

    /// End-of-operation durability point: fsync under `commit`/`always`
    /// (amortized across concurrent committers by the group flusher),
    /// no-op under `off`.
    pub fn commit(&self) -> StoreResult<()> {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if self.mode() == SyncMode::Off {
            return Ok(());
        }
        self.commit_upto(self.last_lsn.load(Ordering::SeqCst))
    }

    /// The write-*ahead* hook: called by the buffer pool before a dirty
    /// heap page reaches disk, so the log records describing that page
    /// are durable first. No-op when everything is already synced or
    /// under `off` (which opts out of torn-page protection).
    pub fn sync_for_write_ahead(&self) -> StoreResult<()> {
        if self.mode() == SyncMode::Off {
            return Ok(());
        }
        // The records that must precede the caller's page were appended
        // before this call, so they are ≤ `last_lsn` as read here; if the
        // watermark already covers it, nothing to do.
        let target = self.last_lsn.load(Ordering::SeqCst);
        if self.synced_lsn.load(Ordering::SeqCst) >= target {
            return Ok(());
        }
        let mut inner = self.lock();
        self.sync_locked(&mut inner)
    }

    /// Atomically replace the log with a fresh one holding a single
    /// checkpoint record. The caller must have flushed and synced every
    /// heap and index and saved the manifest *before* calling this. LSNs
    /// keep increasing across the swap.
    pub fn checkpoint(&self) -> StoreResult<u64> {
        if failpoints::power_cut() {
            return Err(failpoints::power_cut_error());
        }
        let mut inner = self.lock();
        let lsn = inner.next_lsn;
        let payload = WalRecord::Checkpoint.encode()?;
        let crc = crc32c_append(crc32c(&lsn.to_le_bytes()), &payload);
        let tmp = self.path.with_extension("log.tmp");
        let mut out = File::create(&tmp)?;
        out.write_all(&WAL_MAGIC.to_le_bytes())?;
        out.write_all(&WAL_VERSION.to_le_bytes())?;
        out.write_all(&(payload.len() as u32).to_le_bytes())?;
        out.write_all(&crc.to_le_bytes())?;
        out.write_all(&lsn.to_le_bytes())?;
        out.write_all(&payload)?;
        out.sync_all()?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        if let Some(Action::Crash | Action::Torn { .. }) = failpoints::hit("wal::checkpoint") {
            #[cfg(feature = "failpoints")]
            failpoints::trip_power_cut();
            return Err(failpoints::power_cut_error());
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        inner.file = file;
        inner.next_lsn = lsn + 1;
        inner.bytes_since_checkpoint = 0;
        inner.imaged.clear();
        self.last_lsn.fetch_max(lsn, Ordering::SeqCst);
        self.synced_lsn.fetch_max(lsn, Ordering::SeqCst);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("talign_store_wal_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::TableUpsert {
                name: "r".into(),
                file: "r.heap".into(),
                fingerprint: 0xfeed,
                rows: 3,
                schema: "a:int,ts:int,te:int".into(),
                index: Some("r.tidx".into()),
            },
            WalRecord::HeapPageImage {
                table: "r".into(),
                fingerprint: 0xfeed,
                page: 0,
                image: Box::new([0xabu8; PAGE_SIZE]),
            },
            WalRecord::HeapAppend {
                table: "r".into(),
                fingerprint: 0xfeed,
                page: 0,
                zone: Some((1, 9, Some(42))),
                record: vec![1, 2, 3, 4],
            },
            WalRecord::HeapAppend {
                table: "r".into(),
                fingerprint: 0xfeed,
                page: 0,
                zone: None,
                record: vec![],
            },
            WalRecord::TableDrop { name: "s".into() },
        ]
    }

    #[test]
    fn record_codec_roundtrips() {
        for rec in sample_records() {
            let bytes = rec.encode().unwrap();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
        assert_eq!(
            WalRecord::decode(&WalRecord::Checkpoint.encode().unwrap()).unwrap(),
            WalRecord::Checkpoint
        );
    }

    #[test]
    fn append_scan_roundtrip_with_monotonic_lsns() {
        let dir = tmpdir("roundtrip");
        let recs = sample_records();
        {
            let (wal, scan) = Wal::open(&dir).unwrap();
            assert!(scan.records.is_empty());
            assert!(!scan.tail_truncated);
            let mut last = 0;
            for rec in &recs {
                let lsn = wal.append(rec).unwrap();
                assert!(lsn > last);
                last = lsn;
            }
            wal.commit().unwrap();
        }
        let (_, scan) = Wal::open(&dir).unwrap();
        assert!(!scan.tail_truncated);
        let back: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(back, recs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_last_good_record() {
        let dir = tmpdir("torn");
        {
            let (wal, _) = Wal::open(&dir).unwrap();
            for rec in sample_records() {
                wal.append(&rec).unwrap();
            }
            wal.commit().unwrap();
        }
        let path = Wal::path_in(&dir);
        let full = std::fs::read(&path).unwrap();
        // Chop the file mid-way through the last record: scan keeps the
        // prefix and truncates the file to it.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_, scan) = Wal::open(&dir).unwrap();
        assert!(scan.tail_truncated);
        assert_eq!(scan.records.len(), sample_records().len() - 1);
        assert!(std::fs::metadata(&path).unwrap().len() < full.len() as u64 - 3);
        // The truncated log is clean on the next open.
        let (_, scan) = Wal::open(&dir).unwrap();
        assert!(!scan.tail_truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_any_record_drops_it_and_the_suffix() {
        let dir = tmpdir("bitflip");
        {
            let (wal, _) = Wal::open(&dir).unwrap();
            for rec in sample_records() {
                wal.append(&rec).unwrap();
            }
            wal.commit().unwrap();
        }
        let path = Wal::path_in(&dir);
        let pristine = std::fs::read(&path).unwrap();
        let mut corrupt = pristine.clone();
        let mid = HEADER_LEN as usize + (pristine.len() - HEADER_LEN as usize) / 2;
        corrupt[mid] ^= 0x10;
        std::fs::write(&path, &corrupt).unwrap();
        let (_, scan) = Wal::open(&dir).unwrap();
        assert!(scan.tail_truncated);
        assert!(scan.records.len() < sample_records().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_log_and_keeps_lsns_monotonic() {
        let dir = tmpdir("checkpoint");
        let (wal, _) = Wal::open(&dir).unwrap();
        let mut last = 0;
        for rec in sample_records() {
            last = wal.append(&rec).unwrap();
        }
        assert!(wal.bytes_since_checkpoint() > PAGE_SIZE as u64);
        let ck = wal.checkpoint().unwrap();
        assert!(ck > last);
        assert_eq!(wal.bytes_since_checkpoint(), 0);
        let post = wal
            .append(&WalRecord::TableDrop { name: "r".into() })
            .unwrap();
        assert!(post > ck);
        drop(wal);
        // Replay sees only the post-checkpoint record.
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].0, post);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn first_touch_tracks_per_epoch_and_per_table() {
        let dir = tmpdir("first_touch");
        let (wal, _) = Wal::open(&dir).unwrap();
        assert!(wal.first_touch("r", 0));
        assert!(!wal.first_touch("r", 0));
        assert!(wal.first_touch("r", 1));
        assert!(wal.first_touch("s", 0));
        // Dropping a table forgets its pages; an unrelated table keeps its.
        wal.append(&WalRecord::TableDrop { name: "r".into() })
            .unwrap();
        assert!(wal.first_touch("r", 0));
        assert!(!wal.first_touch("s", 0));
        // A checkpoint forgets everything.
        wal.checkpoint().unwrap();
        assert!(wal.first_touch("s", 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_mode_parses_and_counts_syncs() {
        assert_eq!(SyncMode::parse("off"), Some(SyncMode::Off));
        assert_eq!(SyncMode::parse("COMMIT"), Some(SyncMode::Commit));
        assert_eq!(SyncMode::parse(" always "), Some(SyncMode::Always));
        assert_eq!(SyncMode::parse("fsync-maybe"), None);
        let dir = tmpdir("sync_counts");
        let (wal, _) = Wal::open(&dir).unwrap();
        wal.set_mode(SyncMode::Off);
        wal.append(&WalRecord::TableDrop { name: "a".into() })
            .unwrap();
        wal.commit().unwrap();
        assert_eq!(wal.syncs(), 0);
        wal.set_mode(SyncMode::Always);
        wal.append(&WalRecord::TableDrop { name: "b".into() })
            .unwrap();
        assert_eq!(wal.syncs(), 1);
        wal.set_mode(SyncMode::Commit);
        wal.append(&WalRecord::TableDrop { name: "c".into() })
            .unwrap();
        assert_eq!(wal.syncs(), 1);
        wal.commit().unwrap();
        assert_eq!(wal.syncs(), 2);
        wal.commit().unwrap(); // nothing new to sync
        assert_eq!(wal.syncs(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_watermark_tracks_durability() {
        let dir = tmpdir("watermark");
        let (wal, _) = Wal::open(&dir).unwrap();
        wal.set_mode(SyncMode::Commit);
        let base = wal.synced_lsn();
        let a = wal
            .append(&WalRecord::TableDrop { name: "a".into() })
            .unwrap();
        let b = wal
            .append(&WalRecord::TableDrop { name: "b".into() })
            .unwrap();
        assert_eq!(wal.last_lsn(), b);
        assert_eq!(wal.synced_lsn(), base);
        wal.commit().unwrap();
        assert!(wal.synced_lsn() >= b);
        assert!(wal.synced_lsn() >= a);
        assert_eq!(wal.syncs(), 1);
        assert_eq!(wal.commits(), 1);
        // A second commit with nothing new is covered by the watermark.
        wal.commit().unwrap();
        assert_eq!(wal.syncs(), 1);
        assert_eq!(wal.commits(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_commits_share_one_fsync() {
        use std::sync::{Arc, Barrier};
        let dir = tmpdir("group_commit");
        let (wal, _) = Wal::open(&dir).unwrap();
        wal.set_mode(SyncMode::Commit);
        let wal = Arc::new(wal);
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let wal = wal.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    wal.append(&WalRecord::TableDrop {
                        name: format!("t{i}"),
                    })
                    .unwrap();
                    // Every append lands before any commit starts, so the
                    // first elected flusher's fsync covers all eight
                    // committers: exactly one sync for the whole group.
                    barrier.wait();
                    wal.commit().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.commits(), n as u64);
        assert_eq!(wal.syncs(), 1);
        assert_eq!(wal.synced_lsn(), wal.last_lsn());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn always_mode_group_commits_across_appenders() {
        use std::sync::Arc;
        let dir = tmpdir("group_always");
        let (wal, _) = Wal::open(&dir).unwrap();
        wal.set_mode(SyncMode::Always);
        let wal = Arc::new(wal);
        let n = 4;
        let per = 16;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for j in 0..per {
                        wal.append(&WalRecord::TableDrop {
                            name: format!("t{i}_{j}"),
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Per-record durability still holds (watermark caught up), but
        // concurrent appenders may share flushes, so the sync count never
        // exceeds the record count.
        assert_eq!(wal.synced_lsn(), wal.last_lsn());
        assert!(wal.syncs() <= (n * per) as u64);
        assert!(wal.syncs() >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
