//! The name-based, lazy frame front door (ISSUE 4): `TemporalFrame`
//! pipelines must agree row-for-row with the eager `TemporalAlgebra` and
//! the point-wise `reference::oracle`; name resolution must fail helpfully
//! (unknown / ambiguous / qualified); and the Rust and SQL surfaces must
//! share one `Database` — same catalog, same planner, same physical plan
//! for equivalent queries.

mod common;

use common::{rel1, rel2};
use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::reference::evaluate_oracle;
use temporal_alignment::core::semantics::TemporalOp;
use temporal_alignment::engine::prelude::*;
use temporal_alignment::sql::{DatabaseSqlExt, Session};
use temporal_datasets::{ddisj, deq, drand};

/// Apply one operator to a lazy frame (the name-based front door, using
/// its positional compatibility methods for arbitrary generated ops).
fn apply_frame(op: &TemporalOp, frame: TemporalFrame, rhs: Option<TemporalFrame>) -> TemporalFrame {
    match op {
        TemporalOp::Selection { predicate } => frame.filter(predicate.clone()),
        TemporalOp::Projection { attrs } => frame.project(attrs),
        TemporalOp::Aggregation { group, aggs } => frame.aggregate_at(group, aggs.clone()),
        TemporalOp::Union => frame.union(rhs.expect("binary")),
        TemporalOp::Difference => frame.difference(rhs.expect("binary")),
        TemporalOp::Intersection => frame.intersection(rhs.expect("binary")),
        TemporalOp::CartesianProduct => frame.cartesian_product(rhs.expect("binary")),
        TemporalOp::Join { theta } => frame.temporal_join(rhs.expect("binary"), theta.clone()),
        TemporalOp::LeftOuterJoin { theta } => {
            frame.left_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::RightOuterJoin { theta } => {
            frame.right_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::FullOuterJoin { theta } => {
            frame.full_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::AntiJoin { theta } => frame.anti_join(rhs.expect("binary"), theta.clone()),
    }
}

/// Chains whose first operator is binary over `(r, s)` and whose remaining
/// operators are unary — valid for two one-data-column relations.
fn chains_1col() -> Vec<Vec<TemporalOp>> {
    let count = vec![(AggCall::count_star(), "cnt".to_string())];
    vec![
        vec![
            TemporalOp::Join {
                theta: Some(col(0usize).eq(col(3usize))),
            },
            TemporalOp::Selection {
                predicate: col(0usize).ge(lit(1i64)),
            },
            TemporalOp::Projection { attrs: vec![0] },
        ],
        vec![
            TemporalOp::LeftOuterJoin { theta: None },
            TemporalOp::Aggregation {
                group: vec![0],
                aggs: count.clone(),
            },
        ],
        vec![
            TemporalOp::Union,
            TemporalOp::Selection {
                predicate: col(0usize).lt(lit(4i64)),
            },
            TemporalOp::Projection { attrs: vec![0] },
        ],
        vec![
            TemporalOp::Difference,
            TemporalOp::Aggregation {
                group: vec![],
                aggs: count,
            },
        ],
        vec![
            TemporalOp::AntiJoin {
                theta: Some(col(0usize).eq(col(3usize))),
            },
            TemporalOp::Projection { attrs: vec![0] },
        ],
    ]
}

/// Evaluate a chain three ways — lazy frame, eager algebra, oracle — and
/// assert all agree.
fn check_chain(chain: &[TemporalOp], r: &TemporalRelation, s: &TemporalRelation, label: &str) {
    let db = Database::new();
    let mut frame = apply_frame(&chain[0], db.frame(r), Some(db.frame(s)));
    for op in &chain[1..] {
        frame = apply_frame(op, frame, None);
    }
    let collected = frame
        .collect()
        .unwrap_or_else(|e| panic!("{label}: frame collect: {e}"));

    let alg = TemporalAlgebra::default();
    let mut eager = chain[0]
        .evaluate(&alg, &[r, s])
        .unwrap_or_else(|e| panic!("{label}: eager {}: {e}", chain[0].name()));
    for op in &chain[1..] {
        eager = op
            .evaluate(&alg, &[&eager])
            .unwrap_or_else(|e| panic!("{label}: eager {}: {e}", op.name()));
    }

    let mut oracle = evaluate_oracle(&chain[0], &[r, s])
        .unwrap_or_else(|e| panic!("{label}: oracle {}: {e}", chain[0].name()));
    for op in &chain[1..] {
        oracle = evaluate_oracle(op, &[&oracle])
            .unwrap_or_else(|e| panic!("{label}: oracle {}: {e}", op.name()));
    }

    assert!(
        collected.same_set(&eager),
        "{label}: frame vs eager mismatch.\nframe:\n{collected}\neager:\n{eager}"
    );
    assert!(
        collected.same_set(&oracle),
        "{label}: frame vs oracle mismatch.\nframe:\n{collected}\noracle:\n{oracle}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Frame pipelines over the paper's synthetic datasets: frame ≡ eager
    /// ≡ oracle on Ddisj and Deq of random sizes.
    #[test]
    fn frame_pipelines_agree_on_ddisj_and_deq(n in 2usize..6) {
        let (r, s) = ddisj(n);
        for (i, chain) in chains_1col().iter().enumerate() {
            check_chain(chain, &r, &s, &format!("ddisj({n}) chain {i}"));
        }
        let (r, s) = deq(n);
        for (i, chain) in chains_1col().iter().enumerate() {
            check_chain(chain, &r, &s, &format!("deq({n}) chain {i}"));
        }
    }

    /// Frame pipelines on Drand (random intervals, asymmetric schemas).
    #[test]
    fn frame_pipelines_agree_on_drand(n in 2usize..6, seed in 0u64..1000) {
        let (r, s) = drand(n, seed);
        // concat row = (id, ts, te, a, min, max, ts, te)
        let chains: Vec<Vec<TemporalOp>> = vec![
            vec![
                TemporalOp::Join { theta: Some(col(0usize).lt(col(3usize))) },
                TemporalOp::Projection { attrs: vec![0] },
                TemporalOp::Aggregation {
                    group: vec![],
                    aggs: vec![(AggCall::count_star(), "cnt".to_string())],
                },
            ],
            vec![
                TemporalOp::AntiJoin { theta: Some(col(0usize).eq(col(3usize))) },
                TemporalOp::Selection { predicate: col(0usize).ge(lit(0i64)) },
                TemporalOp::Projection { attrs: vec![0] },
            ],
            vec![
                TemporalOp::FullOuterJoin { theta: Some(col(0usize).lt(col(3usize))) },
                TemporalOp::Projection { attrs: vec![0, 1] },
            ],
        ];
        for (i, chain) in chains.iter().enumerate() {
            check_chain(chain, &r, &s, &format!("drand({n}, {seed}) chain {i}"));
        }
    }
}

// ---- acceptance: every TemporalAlgebra operator via frames -------------

/// Every operator reachable from `TemporalAlgebra` is expressible through
/// `TemporalFrame` with *name-based* expressions, and agrees with the
/// eager evaluation.
#[test]
fn every_algebra_operator_is_expressible_via_frames() {
    let r = rel1("r", &[(1, 0, 8), (2, 5, 12), (3, 1, 3)]);
    let s = rel1("s", &[(1, 2, 4), (2, 6, 15), (2, 1, 5)]);
    let db = Database::new();
    db.register("r", &r).unwrap();
    db.register("s", &s).unwrap();
    let alg = TemporalAlgebra::default();

    let rf = || db.table("r").unwrap();
    let sf = || db.table("s").unwrap();
    let theta_named = || col("r.k").eq(col("s.k"));
    let theta_pos = || col(0usize).eq(col(3usize));
    let count = || vec![(AggCall::count_star(), "cnt".to_string())];

    let cases: Vec<(&str, TemporalFrame, TemporalRelation)> = vec![
        (
            "selection",
            rf().filter(col("k").ge(lit(2i64))),
            alg.selection(&r, col(0usize).ge(lit(2i64))).unwrap(),
        ),
        (
            "cartesian_product",
            rf().cartesian_product(sf()),
            alg.cartesian_product(&r, &s).unwrap(),
        ),
        (
            "join",
            rf().temporal_join(sf(), theta_named()),
            alg.join(&r, &s, Some(theta_pos())).unwrap(),
        ),
        (
            "left_outer_join",
            rf().left_outer_join(sf(), theta_named()),
            alg.left_outer_join(&r, &s, Some(theta_pos())).unwrap(),
        ),
        (
            "right_outer_join",
            rf().right_outer_join(sf(), theta_named()),
            alg.right_outer_join(&r, &s, Some(theta_pos())).unwrap(),
        ),
        (
            "full_outer_join",
            rf().full_outer_join(sf(), theta_named()),
            alg.full_outer_join(&r, &s, Some(theta_pos())).unwrap(),
        ),
        (
            "anti_join",
            rf().anti_join(sf(), theta_named()),
            alg.anti_join(&r, &s, Some(theta_pos())).unwrap(),
        ),
        (
            "anti_join_optimized",
            rf().anti_join_optimized(sf(), theta_named()),
            alg.anti_join_optimized(&r, &s, Some(theta_pos())).unwrap(),
        ),
        (
            "projection",
            rf().select(&["k"]),
            alg.projection(&r, &[0]).unwrap(),
        ),
        (
            "aggregation",
            rf().aggregate(&["k"], count()),
            alg.aggregation(&r, &[0], count()).unwrap(),
        ),
        ("union", rf().union(sf()), alg.union(&r, &s).unwrap()),
        (
            "difference",
            rf().difference(sf()),
            alg.difference(&r, &s).unwrap(),
        ),
        (
            "intersection",
            rf().intersection(sf()),
            alg.intersection(&r, &s).unwrap(),
        ),
        (
            "align",
            rf().align(sf(), theta_named()),
            alg.align(&r, &s, Some(theta_pos())).unwrap(),
        ),
        (
            "normalize",
            rf().normalize_using(sf(), &["k"]),
            alg.normalize(&r, &s, &[(0, 0)]).unwrap(),
        ),
        ("absorb", rf().absorb(), alg.absorb(&r).unwrap()),
    ];

    for (op, frame, eager) in cases {
        let collected = frame
            .collect()
            .unwrap_or_else(|e| panic!("{op}: frame collect: {e}"));
        assert!(
            collected.same_set(&eager),
            "{op}: frame vs algebra mismatch.\nframe:\n{collected}\nalgebra:\n{eager}"
        );
    }
}

// ---- name resolution errors --------------------------------------------

#[test]
fn unknown_column_gets_did_you_mean() {
    let db = Database::new();
    db.register("r", &rel2("r", &[(1, 10, 0, 5)])).unwrap();
    let err = db
        .table("r")
        .unwrap()
        .filter(col("v").eq(lit(1i64)))
        .collect()
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown column 'v'"), "{err}");
    assert!(err.contains("did you mean"), "{err}");
}

#[test]
fn ambiguous_column_lists_qualified_candidates() {
    let db = Database::new();
    db.register("r", &rel1("r", &[(1, 0, 5)])).unwrap();
    db.register("s", &rel1("s", &[(1, 2, 4)])).unwrap();
    // The registered tables are re-qualified by table name, so the join
    // concat has r.k and s.k: bare `k` in θ is ambiguous…
    let err = db
        .table("r")
        .unwrap()
        .temporal_join(db.table("s").unwrap(), col("k").eq(lit(1i64)))
        .collect()
        .unwrap_err()
        .to_string();
    assert!(err.contains("ambiguous"), "{err}");
    assert!(err.contains("r.k") && err.contains("s.k"), "{err}");
    // …and the qualified forms resolve.
    let out = db
        .table("r")
        .unwrap()
        .temporal_join(db.table("s").unwrap(), col("r.k").eq(col("s.k")))
        .collect()
        .unwrap();
    assert!(!out.is_empty());
}

#[test]
fn qualified_names_resolve_through_joins_and_aliases() {
    let db = Database::new();
    db.register("r", &rel2("r", &[(1, 7, 0, 5), (2, 9, 3, 9)]))
        .unwrap();
    // Qualifiers survive the temporal join reduction: a later filter can
    // still name the side it means.
    let a = db.table("r").unwrap().alias("a");
    let b = db.table("r").unwrap().alias("b");
    let out = a
        .temporal_join(b, col("a.k").eq(col("b.k")))
        .filter(col("a.w").ge(lit(7i64)).and(col("b.w").le(lit(9i64))))
        .collect()
        .unwrap();
    assert!(!out.is_empty());
    // name("…") is the explicit qualified builder.
    let out2 = db
        .table("r")
        .unwrap()
        .filter(name("r.w").gt(lit(8i64)))
        .collect()
        .unwrap();
    assert_eq!(out2.len(), 1);
}

// ---- one Database behind both surfaces ---------------------------------

/// Acceptance: register via one surface, query via the other — Rust
/// frames and `db.sql()` see the same catalog instance.
#[test]
fn rust_and_sql_share_one_catalog() {
    let db = Database::new();

    // Registered via the Rust surface → queried via SQL.
    db.register("r", &rel1("r", &[(1, 0, 5), (2, 3, 9)]))
        .unwrap();
    let via_sql = db.sql_rows("SELECT k FROM r WHERE k = 2").unwrap();
    assert_eq!(via_sql.len(), 1);

    // Registered via the SQL session → queried via frames.
    let mut session = Session::with_database(db.clone());
    session
        .register_temporal("s", &rel1("s", &[(5, 1, 4)]))
        .unwrap();
    let via_frame = db
        .table("s")
        .unwrap()
        .filter(col("k").eq(lit(5i64)))
        .collect()
        .unwrap();
    assert_eq!(via_frame.len(), 1);

    // Dropping through the Database is visible to SQL too.
    assert!(db.drop_table("s").unwrap());
    assert!(db.sql_rows("SELECT * FROM s").is_err());
    assert_eq!(db.list_tables(), vec!["r".to_string()]);
}

/// Acceptance: a frame's EXPLAIN is the *same physical plan* the SQL
/// surface produces for the equivalent query — not merely equivalent
/// output, the identical rendered tree.
#[test]
fn frame_explain_matches_sql_explain() {
    let db = Database::new();
    db.register("t", &rel2("t", &[(1, 7, 0, 5), (2, 9, 3, 9), (1, 4, 6, 8)]))
        .unwrap();

    let frame_plan = db
        .table("t")
        .unwrap()
        .filter(col("k").eq(lit(1i64)))
        .explain()
        .unwrap();
    let sql_plan = db.sql_explain("SELECT * FROM t WHERE k = 1").unwrap();
    assert_eq!(
        frame_plan, sql_plan,
        "frame:\n{frame_plan}\nsql:\n{sql_plan}"
    );

    // The shared planner's GUCs steer both surfaces identically.
    db.set("enable_hashjoin", false).unwrap();
    db.set("enable_mergejoin", false).unwrap();
    let frame_join = db
        .table("t")
        .unwrap()
        .alias("a")
        .temporal_join(db.table("t").unwrap().alias("b"), col("a.k").eq(col("b.k")))
        .explain()
        .unwrap();
    assert!(frame_join.contains("NestedLoopJoin"), "{frame_join}");
    let sql_probe = db
        .sql_explain("SELECT * FROM t a JOIN t b ON a.k = b.k AND a.ts = b.ts")
        .unwrap();
    assert!(sql_probe.contains("NestedLoopJoin"), "{sql_probe}");
}

/// `SET` through SQL reconfigures the planner frames use (and vice
/// versa): one planner, not two copies to keep in sync.
#[test]
fn set_through_sql_affects_frames() {
    let db = Database::new();
    db.register("t", &rel1("t", &[(1, 0, 5), (2, 3, 9)]))
        .unwrap();
    db.sql("SET enable_hashjoin = off").unwrap();
    db.sql("SET enable_mergejoin = off").unwrap();
    let plan = db
        .table("t")
        .unwrap()
        .alias("a")
        .temporal_join(db.table("t").unwrap().alias("b"), col("a.k").eq(col("b.k")))
        .explain()
        .unwrap();
    assert!(plan.contains("NestedLoopJoin"), "{plan}");
    assert!(!plan.contains("HashJoin"), "{plan}");
    db.sql("SET enable_hashjoin = on").unwrap();
    let plan = db
        .table("t")
        .unwrap()
        .alias("a")
        .temporal_join(db.table("t").unwrap().alias("b"), col("a.k").eq(col("b.k")))
        .explain()
        .unwrap();
    assert!(plan.contains("HashJoin"), "{plan}");
}

/// Lazy means lazy: building a frame over a table, then replacing the
/// table before collect, executes against the *current* catalog state.
#[test]
fn frames_are_lazy_until_collect() {
    let db = Database::new();
    db.register("t", &rel1("t", &[(1, 0, 5)])).unwrap();
    let frame = db.table("t").unwrap().filter(col("k").ge(lit(0i64)));
    db.register_or_replace("t", &rel1("t", &[(1, 0, 5), (2, 1, 3), (3, 4, 6)]))
        .unwrap();
    assert_eq!(frame.collect().unwrap().len(), 3);
}

/// collect_batches streams the same rows collect materializes.
#[test]
fn collect_batches_agrees_with_collect() {
    let (r, s) = drand(64, 42);
    let db = Database::new();
    db.register("r", &r).unwrap();
    db.register("s", &s).unwrap();
    let frame = db
        .table("r")
        .unwrap()
        .temporal_join(db.table("s").unwrap(), col("id").lt(col("a")))
        .project(&[0]);
    let collected = frame.collect().unwrap();
    let batched: usize = frame
        .collect_batches()
        .unwrap()
        .iter()
        .map(|b| b.len())
        .sum();
    assert_eq!(collected.len(), batched);
}
