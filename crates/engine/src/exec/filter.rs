//! Selection σ: stream rows satisfying a predicate.

use crate::batch::RowBatch;
use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::expr::Expr;
use crate::schema::Schema;
use crate::tuple::Row;

/// Filters input rows by a predicate (NULL ⇒ dropped, per SQL).
pub struct FilterExec {
    input: BoxedExec,
    predicate: Expr,
}

impl FilterExec {
    pub fn new(input: BoxedExec, predicate: Expr) -> Self {
        FilterExec { input, predicate }
    }
}

impl ExecNode for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        while let Some(row) = self.input.next(state)? {
            if self.predicate.eval_pred(row.values())? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Batch path: one vectorized predicate evaluation per input batch.
    /// Loops past batches the predicate empties — `Some` batches are never
    /// empty.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        while let Some(batch) = self.input.next_batch(state)? {
            let keep = self.predicate.eval_pred_batch(batch.rows())?;
            let (schema, mut rows) = batch.into_parts();
            let mut it = keep.into_iter();
            rows.retain(|_| it.next().expect("mask covers the batch"));
            if !rows.is_empty() {
                return Ok(Some(RowBatch::new(schema, rows)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int_rel;
    use crate::exec::{collect, ExecutionState, SeqScanExec};
    use crate::expr::{col, lit};
    use crate::value::Value;

    #[test]
    fn keeps_matching_rows() {
        let rel = int_rel("a", &[1, 5, 3, 7]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let filter = Box::new(FilterExec::new(scan, col(0).gt(lit(3i64))));
        let out = collect(filter, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::Int(5));
        assert_eq!(out.rows()[1][0], Value::Int(7));
    }

    #[test]
    fn null_predicate_drops_row() {
        use crate::relation::Relation;
        use crate::schema::{Column, DataType};
        let rel = Relation::from_values(
            Schema::new(vec![Column::new("a", DataType::Int)]),
            vec![vec![Value::Null], vec![Value::Int(4)]],
        )
        .unwrap()
        .into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let filter = Box::new(FilterExec::new(scan, col(0).gt(lit(0i64))));
        let out = collect(filter, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
