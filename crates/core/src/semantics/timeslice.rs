//! The timeslice operator τ_t (Sec. 3.1):
//! `τ_t(r) = { r.A | r ∈ r ∧ t ∈ r.T }`.

use temporal_engine::relation::Relation;

use crate::interval::TimePoint;
use crate::trel::TemporalRelation;

/// The snapshot of `r` at time `t`: a nontemporal relation over the data
/// columns (set semantics).
pub fn timeslice(r: &TemporalRelation, t: TimePoint) -> Relation {
    r.timeslice(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use temporal_engine::prelude::*;

    #[test]
    fn timeslice_matches_method() {
        let r = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (vec![Value::str("a")], Interval::of(0, 4)),
                (vec![Value::str("b")], Interval::of(2, 6)),
            ],
        )
        .unwrap();
        assert_eq!(timeslice(&r, 3).len(), 2);
        assert_eq!(timeslice(&r, 5).len(), 1);
        assert_eq!(timeslice(&r, 6).len(), 0);
        assert!(timeslice(&r, 3).same_set(&r.timeslice(3)));
    }

    #[test]
    fn timeslice_dedups_value_equivalent_rows() {
        // Two tuples with the same data live at t ⇒ one snapshot row.
        // (Such relations are not duplicate free, but τ must still be a set.)
        let rel = Relation::from_values(
            crate::trel::temporal_schema(vec![Column::new("n", DataType::Str)]),
            vec![
                vec![Value::str("a"), Value::Int(0), Value::Int(5)],
                vec![Value::str("a"), Value::Int(3), Value::Int(8)],
            ],
        )
        .unwrap();
        let r = TemporalRelation::new(rel).unwrap();
        assert_eq!(timeslice(&r, 4).len(), 1);
    }
}
