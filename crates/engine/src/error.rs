//! Engine error type shared across planning and execution.

use std::fmt;

/// Errors produced by the engine (planning, analysis or execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A schema did not match expectations (arity, union compatibility, …).
    SchemaMismatch(String),
    /// A column name could not be resolved or was ambiguous.
    UnknownColumn(String),
    /// A table name could not be resolved in the catalog.
    UnknownTable(String),
    /// A table with the same name is already registered.
    DuplicateTable(String),
    /// A value had the wrong type for an operation.
    TypeError(String),
    /// The requested feature is not supported by the engine.
    Unsupported(String),
    /// Arithmetic overflow or similar evaluation failure.
    Evaluation(String),
    /// A storage-layer failure (paging, buffering, manifest or codec).
    Storage(String),
    /// An internal invariant was violated (a bug in the engine).
    Internal(String),
    /// The query was cancelled via its execution state.
    Cancelled,
    /// Another session holds the writer lock and the bounded wait expired.
    /// Writers are serialized; callers should retry rather than assume
    /// corruption.
    Busy(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            EngineError::UnknownColumn(m) => write!(f, "unknown column: {m}"),
            EngineError::UnknownTable(m) => write!(f, "unknown table: {m}"),
            EngineError::DuplicateTable(m) => write!(f, "duplicate table: {m}"),
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Evaluation(m) => write!(f, "evaluation error: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::Internal(m) => write!(f, "internal error: {m}"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Busy(m) => write!(f, "busy: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<temporal_store::StoreError> for EngineError {
    fn from(e: temporal_store::StoreError) -> Self {
        EngineError::Storage(e.to_string())
    }
}

/// Result alias used throughout the engine.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = EngineError::UnknownColumn("r.pcn".into());
        assert_eq!(e.to_string(), "unknown column: r.pcn");
        let e = EngineError::TypeError("Int + Str".into());
        assert!(e.to_string().contains("type error"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EngineError::Internal("x".into()));
    }
}
