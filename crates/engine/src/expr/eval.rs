//! Expression interpretation with SQL three-valued logic.

use crate::error::{EngineError, EngineResult};
use crate::expr::{ArithOp, CmpOp, Expr, Func};
use crate::value::{num_add, num_div, num_mul, num_sub, Value};

impl Expr {
    /// Evaluate against a row (a slice of values).
    pub fn eval(&self, row: &[Value]) -> EngineResult<Value> {
        match self {
            Expr::Col(i) => row.get(*i).cloned().ok_or_else(|| {
                EngineError::Internal(format!(
                    "column index {i} out of bounds for row of width {}",
                    row.len()
                ))
            }),
            Expr::Name(n) => Err(EngineError::Internal(format!(
                "unresolved column name '{n}' reached the executor — \
                 resolve the expression against the input schema first"
            ))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let va = a.eval(row)?;
                let vb = b.eval(row)?;
                Ok(eval_cmp(*op, &va, &vb))
            }
            Expr::And(a, b) => {
                // Kleene AND: false dominates NULL.
                let va = a.eval(row)?;
                if va == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                let vb = b.eval(row)?;
                if vb == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                bool_pair(&va, &vb, "AND", |x, y| x && y)
            }
            Expr::Or(a, b) => {
                // Kleene OR: true dominates NULL.
                let va = a.eval(row)?;
                if va == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let vb = b.eval(row)?;
                if vb == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                bool_pair(&va, &vb, "OR", |x, y| x || y)
            }
            Expr::Not(a) => match a.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(EngineError::TypeError(format!(
                    "NOT applied to {}",
                    other.type_name()
                ))),
            },
            Expr::Neg(a) => match a.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => i
                    .checked_neg()
                    .map(Value::Int)
                    .ok_or_else(|| EngineError::Evaluation("integer overflow in negation".into())),
                Value::Double(d) => Ok(Value::Double(-d)),
                other => Err(EngineError::TypeError(format!(
                    "unary minus applied to {}",
                    other.type_name()
                ))),
            },
            Expr::Arith(op, a, b) => {
                let va = a.eval(row)?;
                let vb = b.eval(row)?;
                match op {
                    ArithOp::Add => num_add(&va, &vb),
                    ArithOp::Sub => num_sub(&va, &vb),
                    ArithOp::Mul => num_mul(&va, &vb),
                    ArithOp::Div => num_div(&va, &vb),
                }
            }
            Expr::Func(f, args) => eval_func(*f, args, row),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                let ge_lo = eval_cmp(CmpOp::Ge, &v, &lo);
                let le_hi = eval_cmp(CmpOp::Le, &v, &hi);
                // v BETWEEN lo AND hi ≡ v >= lo AND v <= hi (Kleene).
                let both = kleene_and(&ge_lo, &le_hi);
                Ok(if *negated { kleene_not(&both) } else { both })
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluate as a predicate: NULL (unknown) is treated as `false`, as in
    /// SQL `WHERE`/`ON` clauses.
    pub fn eval_pred(&self, row: &[Value]) -> EngineResult<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(EngineError::TypeError(format!(
                "predicate evaluated to {}, expected bool",
                other.type_name()
            ))),
        }
    }
}

pub(crate) fn bool_pair(
    a: &Value,
    b: &Value,
    op: &str,
    f: fn(bool, bool) -> bool,
) -> EngineResult<Value> {
    match (a.as_bool(), b.as_bool()) {
        (Some(x), Some(y)) => Ok(Value::Bool(f(x, y))),
        _ => Err(EngineError::TypeError(format!(
            "{op} applied to {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

pub(crate) fn kleene_and(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (Value::Bool(x), Value::Bool(y)) => Value::Bool(*x && *y),
        _ => Value::Null,
    }
}

pub(crate) fn kleene_not(a: &Value) -> Value {
    match a {
        Value::Bool(b) => Value::Bool(!b),
        _ => Value::Null,
    }
}

pub(crate) fn eval_cmp(op: CmpOp, a: &Value, b: &Value) -> Value {
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    match (op, a.sql_cmp(b)) {
        (CmpOp::Eq, Some(o)) => Value::Bool(o.is_eq()),
        (CmpOp::Ne, Some(o)) => Value::Bool(o.is_ne()),
        (CmpOp::Lt, Some(o)) => Value::Bool(o.is_lt()),
        (CmpOp::Le, Some(o)) => Value::Bool(o.is_le()),
        (CmpOp::Gt, Some(o)) => Value::Bool(o.is_gt()),
        (CmpOp::Ge, Some(o)) => Value::Bool(o.is_ge()),
        // Incomparable non-null types: equal never, ordered never.
        (CmpOp::Eq, None) => Value::Bool(false),
        (CmpOp::Ne, None) => Value::Bool(true),
        (_, None) => Value::Null,
    }
}

fn eval_func(f: Func, args: &[Expr], row: &[Value]) -> EngineResult<Value> {
    let arity = |want: usize| -> EngineResult<()> {
        if args.len() == want {
            Ok(())
        } else {
            Err(EngineError::TypeError(format!(
                "{} expects {want} argument(s), got {}",
                f.name(),
                args.len()
            )))
        }
    };
    match f {
        Func::Dur => {
            // DUR(ts, te) = te - ts, the duration of [ts, te).
            arity(2)?;
            let ts = args[0].eval(row)?;
            let te = args[1].eval(row)?;
            num_sub(&te, &ts)
        }
        Func::Greatest | Func::Least => {
            if args.is_empty() {
                return Err(EngineError::TypeError(format!(
                    "{} expects at least one argument",
                    f.name()
                )));
            }
            let mut best: Option<Value> = None;
            for a in args {
                let v = a.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b) {
                            Some(o) => {
                                if f == Func::Greatest {
                                    o.is_gt()
                                } else {
                                    o.is_lt()
                                }
                            }
                            None => {
                                return Err(EngineError::TypeError(format!(
                                    "{} arguments are not comparable",
                                    f.name()
                                )))
                            }
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.expect("non-empty"))
        }
        Func::Coalesce => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        Func::Abs => {
            arity(1)?;
            match args[0].eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => i
                    .checked_abs()
                    .map(Value::Int)
                    .ok_or_else(|| EngineError::Evaluation("integer overflow in abs".into())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                other => Err(EngineError::TypeError(format!(
                    "abs applied to {}",
                    other.type_name()
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn row(vals: Vec<Value>) -> Vec<Value> {
        vals
    }

    #[test]
    fn three_valued_and_or() {
        let r = row(vec![Value::Null, Value::Bool(true), Value::Bool(false)]);
        // NULL AND false = false
        assert_eq!(col(0).and(col(2)).eval(&r).unwrap(), Value::Bool(false));
        // NULL AND true = NULL
        assert_eq!(col(0).and(col(1)).eval(&r).unwrap(), Value::Null);
        // NULL OR true = true
        assert_eq!(col(0).or(col(1)).eval(&r).unwrap(), Value::Bool(true));
        // NULL OR false = NULL
        assert_eq!(col(0).or(col(2)).eval(&r).unwrap(), Value::Null);
        // NOT NULL = NULL
        assert_eq!(col(0).not().eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons_propagate_null_and_pred_treats_as_false() {
        let r = row(vec![Value::Null, Value::Int(1)]);
        let e = col(0).eq(col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.eval_pred(&r).unwrap());
    }

    #[test]
    fn between_inclusive() {
        let r = row(vec![Value::Int(5)]);
        assert!(col(0).between(lit(5i64), lit(7i64)).eval_pred(&r).unwrap());
        assert!(col(0).between(lit(1i64), lit(5i64)).eval_pred(&r).unwrap());
        assert!(!col(0).between(lit(6i64), lit(7i64)).eval_pred(&r).unwrap());
    }

    #[test]
    fn dur_is_te_minus_ts() {
        let r = row(vec![Value::Int(3), Value::Int(10)]);
        let e = Expr::Func(Func::Dur, vec![col(0), col(1)]);
        assert_eq!(e.eval(&r).unwrap(), Value::Int(7));
    }

    #[test]
    fn greatest_least_null_propagating() {
        let r = row(vec![Value::Int(3), Value::Int(10), Value::Null]);
        let g = Expr::Func(Func::Greatest, vec![col(0), col(1)]);
        assert_eq!(g.eval(&r).unwrap(), Value::Int(10));
        let l = Expr::Func(Func::Least, vec![col(0), col(1)]);
        assert_eq!(l.eval(&r).unwrap(), Value::Int(3));
        let g = Expr::Func(Func::Greatest, vec![col(0), col(2)]);
        assert_eq!(g.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn coalesce_first_non_null() {
        let r = row(vec![Value::Null, Value::Int(7)]);
        let e = Expr::Func(Func::Coalesce, vec![col(0), col(1), lit(9i64)]);
        assert_eq!(e.eval(&r).unwrap(), Value::Int(7));
        let e = Expr::Func(Func::Coalesce, vec![col(0), col(0)]);
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        let r = row(vec![Value::Null, Value::Int(7)]);
        assert!(col(0).is_null().eval_pred(&r).unwrap());
        assert!(col(1).is_not_null().eval_pred(&r).unwrap());
        assert!(!col(1).is_null().eval_pred(&r).unwrap());
    }

    #[test]
    fn cross_type_equality_is_false_not_error() {
        let r = row(vec![Value::Int(1), Value::str("1")]);
        assert!(!col(0).eq(col(1)).eval_pred(&r).unwrap());
        assert!(col(0).ne(col(1)).eval_pred(&r).unwrap());
    }

    #[test]
    fn arithmetic_errors_surface() {
        let r = row(vec![Value::Int(i64::MAX)]);
        assert!(col(0).add(lit(1i64)).eval(&r).is_err());
        let r = row(vec![Value::str("x")]);
        assert!(col(0).not().eval(&r).is_err());
    }
}
