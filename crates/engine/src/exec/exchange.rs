//! Exchange: gather partitioned subtrees with a worker pool.
//!
//! The morsel-driven entry point of the parallel executor: the planner
//! splits a scan pipeline into contiguous-range partitions (morsels), and
//! this node hands them to `state.threads()` workers, each worker claiming
//! the next unprocessed partition from a shared atomic counter
//! ([`crate::exec::workers::par_run`]). Partition outputs are reassembled
//! **in partition order**, so the gather is deterministic and byte-equal to
//! running the partitions serially — which is itself row-equal to the
//! unpartitioned pipeline, because partitions are contiguous input ranges
//! of order-preserving operators (scan / filter / project).

use std::sync::atomic::Ordering;
use std::sync::Mutex;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::workers::par_run;
use crate::exec::{collect_rows, collect_rows_batched, BoxedExec, ExecNode, ExecutionState};
use crate::schema::Schema;
use crate::tuple::Row;

/// Materializing gather over partitioned subtrees (see module docs).
pub struct ExchangeExec {
    schema: Schema,
    parts: Vec<BoxedExec>,
    /// Gathered output, filled on first pull (per protocol; a node is
    /// driven through exactly one).
    out: Option<std::vec::IntoIter<Row>>,
}

impl ExchangeExec {
    pub fn new(schema: Schema, parts: Vec<BoxedExec>) -> Self {
        ExchangeExec {
            schema,
            parts,
            out: None,
        }
    }

    /// Drain every partition on the worker pool; concatenate outputs in
    /// partition order. `batched` selects the protocol the partition
    /// subtrees are driven through, matching how this node itself is
    /// driven.
    fn gather(&mut self, state: &ExecutionState, batched: bool) -> EngineResult<()> {
        let parts: Vec<Mutex<BoxedExec>> = self.parts.drain(..).map(Mutex::new).collect();
        let outs = par_run(state.threads(), parts.len(), |i| {
            state.check_cancelled()?;
            state.stats.partitions_run.fetch_add(1, Ordering::Relaxed);
            let mut node = parts[i].lock().expect("partition claimed once");
            if batched {
                collect_rows_batched(node.as_mut(), state)
            } else {
                collect_rows(node.as_mut(), state)
            }
        })?;
        let mut rows = Vec::with_capacity(outs.iter().map(Vec::len).sum());
        for part in outs {
            rows.extend(part);
        }
        self.out = Some(rows.into_iter());
        Ok(())
    }
}

impl ExecNode for ExchangeExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.out.is_none() {
            self.gather(state, false)?;
        }
        Ok(self.out.as_mut().expect("gathered").next())
    }

    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        if self.out.is_none() {
            self.gather(state, true)?;
        }
        let it = self.out.as_mut().expect("gathered");
        let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
        if chunk.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::new(self.schema.clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int_rel;
    use crate::exec::{collect, collect_rowwise, SeqScanExec};
    use crate::plan::PlannerConfig;

    fn four_thread_state() -> ExecutionState {
        ExecutionState::new(PlannerConfig {
            threads: 4,
            parallel_min_rows: 1,
            ..Default::default()
        })
    }

    #[test]
    fn gathers_partitions_in_order_both_protocols() {
        let vals: Vec<i64> = (0..1000).collect();
        let rel = int_rel("a", &vals).into_shared();
        let mk = || {
            let parts: Vec<BoxedExec> = (0..4)
                .map(|i| {
                    Box::new(SeqScanExec::with_range(rel.clone(), i * 250, (i + 1) * 250))
                        as BoxedExec
                })
                .collect();
            ExchangeExec::new(rel.schema().clone(), parts)
        };
        let state = four_thread_state();
        let batch = collect(Box::new(mk()), &state).unwrap();
        let row = collect_rowwise(Box::new(mk()), &state).unwrap();
        assert_eq!(batch.rows(), row.rows());
        assert_eq!(batch.len(), 1000);
        for (i, r) in batch.rows().iter().enumerate() {
            assert_eq!(r[0].as_int().unwrap(), i as i64);
        }
    }

    #[test]
    fn empty_partitions_gather_empty() {
        let rel = int_rel("a", &[]).into_shared();
        let parts: Vec<BoxedExec> = vec![Box::new(SeqScanExec::new(rel.clone()))];
        let mut ex = ExchangeExec::new(rel.schema().clone(), parts);
        let state = four_thread_state();
        assert!(ex.next_batch(&state).unwrap().is_none());
    }
}
