//! Volcano-style pipelined executor.
//!
//! Every physical operator implements [`ExecNode`]: `next()` returns one row
//! at a time until `None`. This mirrors the PostgreSQL executor the paper
//! extends — their `ExecAdjustment` (Fig. 10) "is integrated into the
//! pipelining architecture of PostgreSQL and on each invocation either a
//! single result tuple is returned, or ω". The temporal crate's adjustment
//! node implements this same trait.
//!
//! On top of the row protocol sits a **batch protocol**:
//! [`ExecNode::next_batch`] moves a [`RowBatch`] of ~[`BATCH_SIZE`] rows
//! per virtual call. Every node supports it — the default implementation
//! falls back to pulling rows one at a time — and the hot operators
//! (scan, filter, project, sort, hash join, interval join, the temporal
//! sweeps) override it to do their work over a whole chunk, with
//! expression evaluation vectorized via [`crate::expr::Expr::eval_batch`].
//! The two protocols are row-for-row identical (differentially tested);
//! a node instance must be *driven* through exactly one of them, because
//! operators with native batch implementations keep separate pull state
//! for each protocol.

mod aggregate;
mod distinct;
mod exchange;
mod filter;
mod hash_join;
pub mod instrument;
mod interval_join;
mod limit;
mod merge_join;
mod nl_join;
mod project;
mod scan;
mod setops;
mod sort;
mod state;
mod storage_scan;
mod values;
pub mod workers;

pub use aggregate::{aggregate_rows, HashAggregateExec};
pub use distinct::DistinctExec;
pub use exchange::ExchangeExec;
pub use filter::FilterExec;
pub use hash_join::HashJoinExec;
pub use instrument::{Instrumentation, InstrumentedExec, OperatorStats};
pub use interval_join::IntervalJoinExec;
pub use limit::LimitExec;
pub use merge_join::MergeJoinExec;
pub use nl_join::NestedLoopJoinExec;
pub use project::ProjectExec;
pub use scan::SeqScanExec;
pub use setops::HashSetOpExec;
pub use sort::{sort_rows, sort_rows_batched, sort_rows_parallel, SortExec};
pub use state::{ExecStats, ExecutionState};
pub use storage_scan::StorageScanExec;
pub use values::ValuesExec;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Row;

/// A pipelined executor node.
///
/// Nodes are `Send` so an exchange operator can hand a partition's subtree
/// to a worker thread; shared read-only inputs (`Arc<Relation>`, stored
/// tables) make that safe. All per-query context arrives through the
/// [`ExecutionState`] passed to every pull — nodes hold no config copies.
pub trait ExecNode: Send {
    /// The output schema.
    fn schema(&self) -> &Schema;

    /// Produce the next output row, or `None` when exhausted.
    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>>;

    /// Produce the next batch of output rows, or `None` when exhausted.
    /// Batches are never empty; their size is *about* [`BATCH_SIZE`]
    /// (operators may emit fewer or more rows per call).
    ///
    /// The default implementation pulls rows one at a time via
    /// [`ExecNode::next`], so every node supports both protocols; hot
    /// operators override it to work chunk-at-a-time. Callers must drive a
    /// node instance through exactly one of the two protocols — operators
    /// with native batch implementations keep separate pull state per
    /// protocol, and mixing them on one instance may skip or repeat rows.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        let mut batch = RowBatch::with_capacity(self.schema().clone(), BATCH_SIZE);
        while batch.len() < BATCH_SIZE {
            match self.next(state)? {
                Some(row) => batch.push(row),
                None => break,
            }
        }
        Ok((!batch.is_empty()).then_some(batch))
    }
}

/// Owned, type-erased executor node.
pub type BoxedExec = Box<dyn ExecNode>;

/// Drain a node into a materialized [`Relation`], batch-wise. This is the
/// engine's default result collection (used by `PhysicalPlan::collect` and
/// therefore `Planner::run`).
pub fn collect(mut node: BoxedExec, state: &ExecutionState) -> EngineResult<Relation> {
    let mut rel = Relation::empty(node.schema().clone());
    while let Some(batch) = node.next_batch(state)? {
        state.check_cancelled()?;
        state
            .stats
            .rows_emitted
            .fetch_add(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
        state
            .stats
            .batches_emitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        rel.push_batch(batch)?;
    }
    Ok(rel)
}

/// Drain a node into a materialized [`Relation`] one row at a time — the
/// pre-batch Volcano path, kept working so the two protocols can be
/// differentially tested and benchmarked against each other.
pub fn collect_rowwise(mut node: BoxedExec, state: &ExecutionState) -> EngineResult<Relation> {
    let schema = node.schema().clone();
    let mut rows = Vec::new();
    while let Some(row) = node.next(state)? {
        rows.push(row);
    }
    state
        .stats
        .rows_emitted
        .fetch_add(rows.len() as u64, std::sync::atomic::Ordering::Relaxed);
    Relation::new(schema, rows)
}

/// Drain a node into a row vector via the row protocol (schema discarded).
pub fn collect_rows(node: &mut dyn ExecNode, state: &ExecutionState) -> EngineResult<Vec<Row>> {
    let mut rows = Vec::new();
    while let Some(row) = node.next(state)? {
        rows.push(row);
    }
    Ok(rows)
}

/// Drain a node into a row vector via the batch protocol — the
/// materialization step of blocking operators on the batch path.
pub fn collect_rows_batched(
    node: &mut dyn ExecNode,
    state: &ExecutionState,
) -> EngineResult<Vec<Row>> {
    let mut rows = Vec::new();
    while let Some(batch) = node.next_batch(state)? {
        state.check_cancelled()?;
        rows.extend(batch.into_rows());
    }
    Ok(rows)
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    /// Build a one-column Int relation for executor tests.
    pub fn int_rel(name: &str, vals: &[i64]) -> Relation {
        Relation::from_values(
            Schema::new(vec![Column::new(name, DataType::Int)]),
            vals.iter().map(|&v| vec![Value::Int(v)]).collect(),
        )
        .unwrap()
    }

    /// Build a two-column (Int, Int) relation.
    pub fn int2_rel(names: (&str, &str), vals: &[(i64, i64)]) -> Relation {
        Relation::from_values(
            Schema::new(vec![
                Column::new(names.0, DataType::Int),
                Column::new(names.1, DataType::Int),
            ]),
            vals.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
        .unwrap()
    }

    pub fn rows_of(rel: &Relation) -> Vec<Vec<Value>> {
        rel.rows().iter().map(|r| r.to_vec()).collect()
    }
}
