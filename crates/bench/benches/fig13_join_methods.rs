//! Fig. 13: the runtime of temporal normalization `N_{ssn}` is dominated
//! by the group-construction join, for which the DBMS picks the best
//! *enabled* join method — settings (a) all enabled, (b) merge join
//! disabled, (c) merge and hash joins disabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temporal_bench::run_normalization;
use temporal_datasets::{incumben, prefix, IncumbenSpec};
use temporal_engine::prelude::*;

fn bench(c: &mut Criterion) {
    let data = incumben(IncumbenSpec::default());
    let mut group = c.benchmark_group("fig13_normalization_ssn");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &n in &[500usize, 1_000, 2_000] {
        let r = prefix(&data, n);
        let settings: [(&str, PlannerConfig); 3] = [
            ("all_enabled", PlannerConfig::all_enabled()),
            ("no_merge", PlannerConfig::no_merge()),
            ("nestloop_only", PlannerConfig::nestloop_only()),
        ];
        for (label, config) in settings {
            let planner = Planner::new(config);
            group.bench_with_input(BenchmarkId::new(label, n), &r, |b, r| {
                b.iter(|| run_normalization(r, &[0], &planner))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
