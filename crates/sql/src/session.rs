//! A SQL session: catalog + planner configuration + statement execution.

use temporal_core::trel::TemporalRelation;
use temporal_engine::catalog::Catalog;
use temporal_engine::prelude::*;

use crate::analyzer::Analyzer;
use crate::ast::Statement;
use crate::error::{SqlError, SqlResult};
use crate::parser::parse_statement;

/// Result of executing a statement.
#[derive(Debug, Clone)]
pub enum SqlOutput {
    /// A query result.
    Rows(Relation),
    /// An EXPLAIN plan rendering.
    Explain(String),
    /// A statement with no result (e.g. SET).
    Ok,
}

impl SqlOutput {
    /// Unwrap a row result.
    pub fn rows(self) -> SqlResult<Relation> {
        match self {
            SqlOutput::Rows(r) => Ok(r),
            other => Err(SqlError::Engine(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }
}

/// An interactive session (the paper's psql-with-extensions equivalent).
///
/// The session owns one [`Planner`], reused across statements; a `SET`
/// statement mutates its configuration in place, so there is no separate
/// config copy to keep in sync. (The [`Analyzer`] is a zero-allocation
/// view over the catalog and is constructed per statement — it borrows
/// `self.catalog`, so caching it would freeze the catalog against
/// `register_table`.)
#[derive(Debug, Default)]
pub struct Session {
    catalog: Catalog,
    planner: Planner,
}

impl Session {
    pub fn new() -> Session {
        Session::default()
    }

    /// Register a plain relation as a table.
    pub fn register_table(&mut self, name: impl Into<String>, rel: Relation) -> SqlResult<()> {
        self.catalog.register(name, rel).map_err(SqlError::from)
    }

    /// Register a temporal relation (its ts/te columns become ordinary
    /// Int columns, as in the paper's PostgreSQL implementation).
    pub fn register_temporal(
        &mut self,
        name: impl Into<String>,
        rel: &TemporalRelation,
    ) -> SqlResult<()> {
        self.catalog
            .register(name, rel.rel().clone())
            .map_err(SqlError::from)
    }

    /// The current planner configuration (join-method switches).
    pub fn config(&self) -> &PlannerConfig {
        &self.planner.config
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> SqlResult<SqlOutput> {
        let stmt = parse_statement(sql)?;
        self.run_statement(stmt)
    }

    fn run_statement(&mut self, stmt: Statement) -> SqlResult<SqlOutput> {
        match stmt {
            Statement::Set { name, value } => {
                self.planner
                    .config
                    .set(&name, value)
                    .map_err(|e| SqlError::Analyze(e.to_string()))?;
                Ok(SqlOutput::Ok)
            }
            Statement::Explain(inner) => match *inner {
                Statement::Select(sel) => {
                    let plan = Analyzer::new(&self.catalog).analyze(&sel)?;
                    let physical = self
                        .planner
                        .plan(&plan, &self.catalog)
                        .map_err(SqlError::from)?;
                    Ok(SqlOutput::Explain(physical.explain()))
                }
                other => Err(SqlError::Analyze(format!(
                    "EXPLAIN supports SELECT statements, got {other:?}"
                ))),
            },
            Statement::Select(sel) => {
                let plan = Analyzer::new(&self.catalog).analyze(&sel)?;
                let rel = self
                    .planner
                    .run(&plan, &self.catalog)
                    .map_err(SqlError::from)?;
                Ok(SqlOutput::Rows(rel))
            }
        }
    }

    /// Execute a query and return its rows.
    pub fn query(&mut self, sql: &str) -> SqlResult<Relation> {
        self.execute(sql)?.rows()
    }

    /// Execute a query whose result is a temporal relation (last two
    /// columns ts/te).
    pub fn query_temporal(&mut self, sql: &str) -> SqlResult<TemporalRelation> {
        Ok(TemporalRelation::new(self.query(sql)?)?)
    }

    /// EXPLAIN a query.
    pub fn explain(&mut self, sql: &str) -> SqlResult<String> {
        match self.execute(&format!("EXPLAIN {sql}"))? {
            SqlOutput::Explain(s) => Ok(s),
            _ => unreachable!("EXPLAIN produces Explain output"),
        }
    }
}
