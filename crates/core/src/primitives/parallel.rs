//! Shared plumbing for partitioned (morsel-parallel) temporal sweeps.
//!
//! The plane sweeps ([`AdjustmentExec`](crate::primitives::adjustment) and
//! [`AbsorbExec`](crate::primitives::absorb)) run over input sorted so that
//! value-equivalent tuples are adjacent. All of their carried state is
//! per *data-run* (a maximal run of rows agreeing on the data columns):
//! absorb resets its group state whenever the data columns change, and the
//! aligner's duplicate-suppression row embeds the data values, so it can
//! never match across a data change. Cutting the sorted input only at
//! data-run boundaries therefore yields partitions whose independent,
//! serial sweeps — concatenated in partition order — are row-for-row
//! identical to one serial sweep of the whole input. Groups that would
//! straddle a naive equal-size cut are pushed whole into the earlier
//! partition by snapping each cut forward to the next data change.

use temporal_engine::batch::{RowBatch, BATCH_SIZE};
use temporal_engine::error::EngineResult;
use temporal_engine::exec::workers::split_ranges;
use temporal_engine::exec::{ExecNode, ExecutionState};
use temporal_engine::schema::Schema;
use temporal_engine::tuple::Row;

/// An executor serving a pre-materialized row vector — the per-partition
/// input source for parallel sweep workers.
pub(crate) struct RowsExec {
    schema: Schema,
    rows: Vec<Row>,
    pos: usize,
}

impl RowsExec {
    pub(crate) fn new(schema: Schema, rows: Vec<Row>) -> RowsExec {
        RowsExec {
            schema,
            rows,
            pos: 0,
        }
    }
}

impl ExecNode for RowsExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, _state: &ExecutionState) -> EngineResult<Option<Row>> {
        let row = self.rows.get(self.pos).cloned();
        self.pos += 1;
        Ok(row)
    }

    fn next_batch(&mut self, _state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + BATCH_SIZE).min(self.rows.len());
        let chunk = self.rows[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(RowBatch::new(self.schema.clone(), chunk)))
    }
}

/// Cut `0..rows.len()` into at most `parts` contiguous ranges whose inner
/// boundaries coincide with a change in the first `data_width` columns.
/// Every data-run (and hence every sweep group) lands whole in exactly one
/// range; ranges are never empty. Skewed inputs may yield fewer than
/// `parts` ranges (a single giant run yields one).
pub(crate) fn data_partition_ranges(
    rows: &[Row],
    data_width: usize,
    parts: usize,
) -> Vec<(usize, usize)> {
    let n = rows.len();
    if n == 0 {
        return Vec::new();
    }
    let mut cuts: Vec<usize> = vec![0];
    for (_, target) in split_ranges(n, parts) {
        if target >= n {
            break;
        }
        // Snap the cut forward to the next data change so no run straddles.
        let mut t = target;
        while t < n && rows[t].values()[..data_width] == rows[t - 1].values()[..data_width] {
            t += 1;
        }
        if t < n && t > *cuts.last().expect("non-empty") {
            cuts.push(t);
        }
    }
    cuts.push(n);
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_engine::value::Value;

    fn row(d: i64, t: i64) -> Row {
        Row::new(vec![Value::Int(d), Value::Int(t)])
    }

    #[test]
    fn cuts_only_at_data_changes_and_covers_input() {
        // Runs: 0×5, 1×1, 2×7, 3×2 — 15 rows, data in column 0.
        let mut rows = Vec::new();
        for (d, c) in [(0, 5), (1, 1), (2, 7), (3, 2)] {
            for t in 0..c {
                rows.push(row(d, t));
            }
        }
        for parts in 1..=6 {
            let ranges = data_partition_ranges(&rows, 1, parts);
            assert_eq!(ranges.first().unwrap().0, 0);
            assert_eq!(ranges.last().unwrap().1, rows.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            for &(a, b) in &ranges {
                assert!(a < b, "non-empty");
                if a > 0 {
                    assert_ne!(
                        rows[a].values()[..1],
                        rows[a - 1].values()[..1],
                        "cut at {a} must sit on a data change"
                    );
                }
            }
        }
    }

    #[test]
    fn one_giant_run_yields_one_partition() {
        let rows: Vec<Row> = (0..20).map(|t| row(7, t)).collect();
        assert_eq!(data_partition_ranges(&rows, 1, 4), vec![(0, 20)]);
    }

    #[test]
    fn empty_input_yields_no_partitions() {
        assert!(data_partition_ranges(&[], 1, 4).is_empty());
    }
}
