//! A small, dependency-free CSV codec for `COPY <table> FROM/TO`.
//!
//! Format: RFC-4180-style quoting (`"` wraps fields containing commas,
//! quotes or newlines; embedded quotes double). `COPY TO` writes a header
//! line with the column names; `COPY FROM` skips the first line iff it
//! matches the target schema's column names, so both exported files and
//! hand-written headerless files load. NULL is an empty **unquoted**
//! field; the empty string is the quoted `""`.

use temporal_engine::prelude::*;

use crate::error::{SqlError, SqlResult};

/// One parsed field: its text and whether it was quoted (distinguishes
/// NULL from the empty string).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Field {
    text: String,
    quoted: bool,
}

/// Split one CSV document into records of fields (handles quoted fields
/// spanning newlines).
fn parse_records(text: &str) -> SqlResult<Vec<Vec<Field>>> {
    let mut records = Vec::new();
    let mut record: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
            }
            ',' => {
                record.push(Field {
                    text: std::mem::take(&mut field),
                    quoted: std::mem::take(&mut quoted),
                });
            }
            '\r' => {}
            '\n' => {
                record.push(Field {
                    text: std::mem::take(&mut field),
                    quoted: std::mem::take(&mut quoted),
                });
                records.push(std::mem::take(&mut record));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(SqlError::Parse("unterminated quote in CSV input".into()));
    }
    if !field.is_empty() || quoted || !record.is_empty() {
        record.push(Field {
            text: field,
            quoted,
        });
        records.push(record);
    }
    Ok(records)
}

fn parse_value(f: &Field, dtype: DataType, line: usize, col: &str) -> SqlResult<Value> {
    if !f.quoted && f.text.is_empty() {
        return Ok(Value::Null);
    }
    let bad = |what: &str| {
        SqlError::Parse(format!(
            "CSV line {line}, column {col}: cannot parse {:?} as {what}",
            f.text
        ))
    };
    Ok(match dtype {
        DataType::Int => Value::Int(f.text.trim().parse::<i64>().map_err(|_| bad("int"))?),
        DataType::Double => Value::Double(f.text.trim().parse::<f64>().map_err(|_| bad("double"))?),
        DataType::Bool => match f.text.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(bad("bool")),
        },
        DataType::Str => Value::str(&f.text),
    })
}

/// Parse CSV text into rows typed by `schema`. A leading header line
/// matching the schema's column names (case-insensitive) is skipped.
pub fn rows_from_csv(text: &str, schema: &Schema) -> SqlResult<Vec<Row>> {
    let mut records = parse_records(text)?;
    let names: Vec<String> = schema
        .cols()
        .iter()
        .map(|c| c.name.to_ascii_lowercase())
        .collect();
    let mut start = 0usize;
    if let Some(first) = records.first() {
        let header: Vec<String> = first
            .iter()
            .map(|f| f.text.trim().to_ascii_lowercase())
            .collect();
        if header == names {
            start = 1;
        }
    }
    let mut rows = Vec::with_capacity(records.len().saturating_sub(start));
    for (i, record) in records.drain(..).enumerate().skip(start) {
        if record.len() != schema.len() {
            return Err(SqlError::Parse(format!(
                "CSV line {}: expected {} fields, got {}",
                i + 1,
                schema.len(),
                record.len()
            )));
        }
        let values = record
            .iter()
            .zip(schema.cols())
            .map(|(f, c)| parse_value(f, c.dtype, i + 1, &c.name))
            .collect::<SqlResult<Vec<Value>>>()?;
        rows.push(Row::new(values));
    }
    Ok(rows)
}

fn format_field(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Str(s) => {
            if s.is_empty()
                || s.contains(',')
                || s.contains('"')
                || s.contains('\n')
                || s.contains('\r')
            {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => {
            // `{}` prints the shortest string that round-trips in Rust.
            format!("{d}")
        }
    }
}

/// Render a relation as CSV text with a header line.
pub fn relation_to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel.schema().cols().iter().map(|c| c.name.clone()).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rel.rows() {
        let fields: Vec<String> = row.values().iter().map(format_field).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("n", DataType::Str),
            Column::new("x", DataType::Double),
            Column::new("ok", DataType::Bool),
            Column::new("ts", DataType::Int),
        ])
    }

    #[test]
    fn round_trip_with_quoting_and_nulls() {
        let rel = Relation::from_values(
            schema(),
            vec![
                vec![
                    Value::str("plain"),
                    Value::Double(1.5),
                    Value::Bool(true),
                    Value::Int(3),
                ],
                vec![
                    Value::str("a,b \"quoted\"\nline"),
                    Value::Null,
                    Value::Bool(false),
                    Value::Int(-1),
                ],
                vec![Value::str(""), Value::Double(0.1), Value::Null, Value::Null],
            ],
        )
        .unwrap();
        let text = relation_to_csv(&rel);
        let rows = rows_from_csv(&text, &schema()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows, rel.rows().to_vec());
    }

    #[test]
    fn headerless_input_loads() {
        let rows = rows_from_csv("joe,2.5,t,7\n", &schema()).unwrap();
        assert_eq!(rows[0][0], Value::str("joe"));
        assert_eq!(rows[0][1], Value::Double(2.5));
        assert_eq!(rows[0][2], Value::Bool(true));
        assert_eq!(rows[0][3], Value::Int(7));
    }

    #[test]
    fn arity_and_type_errors_are_reported_with_position() {
        let err = rows_from_csv("a,b\n", &schema()).unwrap_err().to_string();
        assert!(err.contains("expected 4 fields"), "{err}");
        let err = rows_from_csv("x,notanumber,t,1\n", &schema())
            .unwrap_err()
            .to_string();
        assert!(err.contains("column x") && err.contains("double"), "{err}");
        assert!(rows_from_csv("\"unterminated", &schema()).is_err());
    }

    #[test]
    fn empty_text_is_no_rows() {
        assert!(rows_from_csv("", &schema()).unwrap().is_empty());
    }
}
