//! Lineage sets for interval-timestamped databases (Def. 6).
//!
//! `L[ψᵀ(r₁,…,rₙ)](z, t)` is the list of sets of argument tuples from which
//! result tuple `z` is derived at time point `t`. Lineage depends only on
//! the result tuple's *values* and `t` (value-equivalent result tuples have
//! the same lineage at a common `t`), which is what allows Def. 7 to define
//! change preservation via maximal constant-lineage intervals.

use std::collections::BTreeSet;

use temporal_engine::prelude::*;

use crate::error::TemporalResult;
use crate::interval::TimePoint;
use crate::semantics::op::TemporalOp;
use crate::trel::TemporalRelation;

/// One set of argument-tuple indices per argument relation.
pub type Lineage = Vec<BTreeSet<usize>>;

/// Indices of rows of `r` that are live at `t` and whose data values match
/// `wanted` (compared structurally, ω = ω).
fn matching_live(r: &TemporalRelation, wanted: &[Value], t: TimePoint) -> BTreeSet<usize> {
    r.rows()
        .iter()
        .enumerate()
        .filter(|(_, row)| r.interval_of(row).contains_point(t) && r.data_of(row) == wanted)
        .map(|(i, _)| i)
        .collect()
}

/// All row indices of `r` (the time-independent second component of the
/// difference/antijoin lineage, `⟨…, s⟩` in Def. 6).
fn all_rows(r: &TemporalRelation) -> BTreeSet<usize> {
    (0..r.len()).collect()
}

/// Compute `L[op(args)](z, t)` per Def. 6. `z_data` is the result tuple's
/// data values (everything except ts/te).
pub fn lineage(
    op: &TemporalOp,
    args: &[&TemporalRelation],
    z_data: &[Value],
    t: TimePoint,
) -> TemporalResult<Lineage> {
    Ok(match op {
        // L[σθ(r)](z,t) = ⟨{r | z.A = r.A ∧ θ(r) ∧ t ∈ r.T}⟩
        TemporalOp::Selection { predicate } => {
            let r = args[0];
            let mut set = BTreeSet::new();
            for (i, row) in r.rows().iter().enumerate() {
                if r.interval_of(row).contains_point(t)
                    && r.data_of(row) == z_data
                    && predicate.eval_pred(row.values())?
                {
                    set.insert(i);
                }
            }
            vec![set]
        }
        // L[π_B(r)](z,t) = ⟨{r | z.B = r.B ∧ t ∈ r.T}⟩
        TemporalOp::Projection { attrs } => {
            let r = args[0];
            let set = r
                .rows()
                .iter()
                .enumerate()
                .filter(|(_, row)| {
                    r.interval_of(row).contains_point(t)
                        && attrs
                            .iter()
                            .zip(z_data.iter())
                            .all(|(&a, zv)| &row[a] == zv)
                })
                .map(|(i, _)| i)
                .collect();
            vec![set]
        }
        // Aggregation lineage is the projection lineage on the grouping
        // attributes (the aggregate values are part of z's definition).
        TemporalOp::Aggregation { group, .. } => {
            let r = args[0];
            let set = r
                .rows()
                .iter()
                .enumerate()
                .filter(|(_, row)| {
                    r.interval_of(row).contains_point(t)
                        && group
                            .iter()
                            .zip(z_data.iter())
                            .all(|(&a, zv)| &row[a] == zv)
                })
                .map(|(i, _)| i)
                .collect();
            vec![set]
        }
        // L[r −ᵀ s](z,t) = ⟨{r | z.A = r.A ∧ t ∈ r.T}, s⟩
        TemporalOp::Difference => {
            vec![matching_live(args[0], z_data, t), all_rows(args[1])]
        }
        // L[r ∪ᵀ s](z,t) = ⟨{r matches live}, {s matches live}⟩;
        // intersection is identical (paper, below Def. 6).
        TemporalOp::Union | TemporalOp::Intersection => {
            vec![
                matching_live(args[0], z_data, t),
                matching_live(args[1], z_data, t),
            ]
        }
        // L[r ×ᵀ s](z,t) = ⟨{r | z.A = r.A ∧ t∈r.T}, {s | z.C = s.C ∧ t∈s.T}⟩;
        // the inner join is identical.
        TemporalOp::CartesianProduct | TemporalOp::Join { .. } => {
            let dr = args[0].data_width();
            vec![
                matching_live(args[0], &z_data[..dr], t),
                matching_live(args[1], &z_data[dr..], t),
            ]
        }
        // Outer joins: the ω-padded cases take the antijoin (= difference)
        // lineage of the surviving side; otherwise the join lineage.
        TemporalOp::LeftOuterJoin { .. } => {
            let dr = args[0].data_width();
            if z_data[dr..].iter().all(Value::is_null) {
                vec![matching_live(args[0], &z_data[..dr], t), all_rows(args[1])]
            } else {
                vec![
                    matching_live(args[0], &z_data[..dr], t),
                    matching_live(args[1], &z_data[dr..], t),
                ]
            }
        }
        TemporalOp::RightOuterJoin { .. } => {
            let dr = args[0].data_width();
            if z_data[..dr].iter().all(Value::is_null) {
                vec![all_rows(args[0]), matching_live(args[1], &z_data[dr..], t)]
            } else {
                vec![
                    matching_live(args[0], &z_data[..dr], t),
                    matching_live(args[1], &z_data[dr..], t),
                ]
            }
        }
        TemporalOp::FullOuterJoin { .. } => {
            let dr = args[0].data_width();
            if z_data[..dr].iter().all(Value::is_null) {
                vec![all_rows(args[0]), matching_live(args[1], &z_data[dr..], t)]
            } else if z_data[dr..].iter().all(Value::is_null) {
                vec![matching_live(args[0], &z_data[..dr], t), all_rows(args[1])]
            } else {
                vec![
                    matching_live(args[0], &z_data[..dr], t),
                    matching_live(args[1], &z_data[dr..], t),
                ]
            }
        }
        // Antijoin lineage equals the difference lineage.
        TemporalOp::AntiJoin { .. } => {
            vec![matching_live(args[0], z_data, t), all_rows(args[1])]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::month::ym;
    use crate::interval::Interval;

    /// The paper's running example (Fig. 1).
    fn reservations() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (
                    vec![Value::str("ann")],
                    Interval::of(ym(2012, 1), ym(2012, 8)),
                ),
                (
                    vec![Value::str("joe")],
                    Interval::of(ym(2012, 2), ym(2012, 6)),
                ),
                (
                    vec![Value::str("ann")],
                    Interval::of(ym(2012, 8), ym(2012, 12)),
                ),
            ],
        )
        .unwrap()
    }

    fn prices() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("min", DataType::Int),
                Column::new("max", DataType::Int),
            ]),
            vec![
                (
                    vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                    Interval::of(ym(2012, 1), ym(2012, 6)),
                ),
                (
                    vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                    Interval::of(ym(2012, 1), ym(2012, 6)),
                ),
                (
                    vec![Value::Int(30), Value::Int(8), Value::Int(12)],
                    Interval::of(ym(2012, 1), ym(2013, 1)),
                ),
                (
                    vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                    Interval::of(ym(2012, 10), ym(2013, 1)),
                ),
                (
                    vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                    Interval::of(ym(2012, 10), ym(2013, 1)),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example3_join_case() {
        // L[R ⟕θ P](z1, 2012/2) = ⟨{r1}, {s2}⟩ for z1 = (ann, 40, 3, 7).
        let r = reservations();
        let p = prices();
        let op = TemporalOp::LeftOuterJoin { theta: None };
        let z1 = vec![
            Value::str("ann"),
            Value::Int(40),
            Value::Int(3),
            Value::Int(7),
        ];
        let lin = lineage(&op, &[&r, &p], &z1, ym(2012, 2)).unwrap();
        assert_eq!(lin[0], BTreeSet::from([0]));
        assert_eq!(lin[1], BTreeSet::from([1]));
    }

    #[test]
    fn example3_omega_case() {
        // L[R ⟕θ P](z3, 2012/6) = ⟨{r1}, P⟩ for z3 = (ann, ω, ω, ω).
        let r = reservations();
        let p = prices();
        let op = TemporalOp::LeftOuterJoin { theta: None };
        let z3 = vec![Value::str("ann"), Value::Null, Value::Null, Value::Null];
        let lin = lineage(&op, &[&r, &p], &z3, ym(2012, 6)).unwrap();
        assert_eq!(lin[0], BTreeSet::from([0]));
        assert_eq!(lin[1], BTreeSet::from([0, 1, 2, 3, 4])); // all of P
    }

    #[test]
    fn example4_change_at_august() {
        // The lineage of (ann, ω, ω, ω) changes at 2012/8: {r1} → {r3}.
        let r = reservations();
        let p = prices();
        let op = TemporalOp::LeftOuterJoin { theta: None };
        let z = vec![Value::str("ann"), Value::Null, Value::Null, Value::Null];
        let before = lineage(&op, &[&r, &p], &z, ym(2012, 7)).unwrap();
        let after = lineage(&op, &[&r, &p], &z, ym(2012, 8)).unwrap();
        assert_ne!(before, after);
        assert_eq!(before[0], BTreeSet::from([0]));
        assert_eq!(after[0], BTreeSet::from([2]));
    }

    #[test]
    fn selection_lineage_respects_theta() {
        let r = reservations();
        let pred = col(0).eq(lit(Value::str("ann")));
        let op = TemporalOp::Selection { predicate: pred };
        let z = vec![Value::str("ann")];
        let lin = lineage(&op, &[&r], &z, ym(2012, 3)).unwrap();
        assert_eq!(lin[0], BTreeSet::from([0]));
        // joe fails θ even though value-matching is against z anyway
        let zj = vec![Value::str("joe")];
        let lin = lineage(&op, &[&r], &zj, ym(2012, 3)).unwrap();
        assert!(lin[0].is_empty());
    }

    #[test]
    fn union_lineage_has_both_components() {
        let r = reservations();
        let s = reservations();
        let z = vec![Value::str("joe")];
        let lin = lineage(&TemporalOp::Union, &[&r, &s], &z, ym(2012, 3)).unwrap();
        assert_eq!(lin[0], BTreeSet::from([1]));
        assert_eq!(lin[1], BTreeSet::from([1]));
    }

    #[test]
    fn difference_second_component_is_whole_relation() {
        let r = reservations();
        let s = reservations();
        let z = vec![Value::str("ann")];
        let lin = lineage(&TemporalOp::Difference, &[&r, &s], &z, ym(2012, 3)).unwrap();
        assert_eq!(lin[1].len(), s.len());
    }
}
