//! Concurrent multi-client serving end to end (ISSUE 9): an in-process
//! `tsql --serve`-equivalent server is hammered by ≥ 8 concurrent
//! clients mixing `COPY`/`INSERT` appends with plain and alignment
//! (`NORMALIZE`) queries. Readers must observe a **consistent prefix**
//! of every writer's batches — never a torn batch — because each
//! statement pins a heap snapshot; the final state must equal the
//! serial oracle (the multiset a serial execution of the same batches
//! would produce) and survive a reopen. A proptest drives the same
//! snapshot-isolation property directly on [`Database`]: concurrent
//! readers against one appender only ever see whole batches.
//!
//! The whole file also runs under `TEMPORAL_SYNC_MODE=always` in CI —
//! the group-commit flusher then batches the per-record fsyncs too.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use temporal_alignment::prelude::*;
use temporal_alignment::server::{Client, Response, Server};

const WRITERS: usize = 4;
const READERS: usize = 4;
/// Appended batches per writer; half via INSERT, half via COPY.
const BATCHES: usize = 12;
/// Rows per batch — the unit readers must see atomically.
const BATCH: usize = 5;

/// A unique scratch directory for one test.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("talign_server_tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The deterministic row for writer `w`, batch `s`, position `i` —
/// both the writers and the serial oracle derive rows from this.
fn row_for(w: usize, s: usize, i: usize) -> (i64, i64, i64, i64) {
    let ts = (s * BATCH + i) as i64;
    let te = ts + 1 + ((w + i) % 7) as i64;
    (w as i64, s as i64, ts, te)
}

/// Execute with a retry loop on writer-lock contention (`busy: …`),
/// which is a legitimate, retryable outcome for concurrent writers.
fn exec_retry(c: &mut Client, sql: &str) -> Response {
    loop {
        match c.execute(sql).expect("protocol I/O") {
            Response::Error(e) if e.contains("busy") => {
                thread::sleep(Duration::from_millis(5));
            }
            other => return other,
        }
    }
}

/// Assert the `(w, seq)` pairs of one observed scan form a consistent
/// prefix: per writer, whole batches only (multiples of [`BATCH`]) and
/// batch sequence numbers contiguous from 0.
fn assert_consistent_prefix(pairs: &[(i64, i64)], ctx: &str) {
    let mut per: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    for &(w, s) in pairs {
        per.entry(w).or_default().push(s);
    }
    for (w, seqs) in per {
        assert_eq!(
            seqs.len() % BATCH,
            0,
            "{ctx}: torn batch for writer {w}: {} rows",
            seqs.len()
        );
        let k = (seqs.len() / BATCH) as i64;
        let mut counts = vec![0usize; k as usize];
        for s in seqs {
            assert!(
                (0..k).contains(&s),
                "{ctx}: writer {w} shows batch {s} but only {k} whole batches"
            );
            counts[s as usize] += 1;
        }
        for (s, n) in counts.iter().enumerate() {
            assert_eq!(
                *n, BATCH,
                "{ctx}: writer {w} batch {s} is partially visible"
            );
        }
    }
}

/// Parse a `(w, seq)` projection out of a `ROWS` response.
fn pairs_of(resp: Response, ctx: &str) -> Vec<(i64, i64)> {
    match resp {
        Response::Rows { rows, .. } => rows
            .iter()
            .map(|r| {
                let w = r[0].as_deref().unwrap().parse::<i64>().unwrap();
                let s = r[1].as_deref().unwrap().parse::<i64>().unwrap();
                (w, s)
            })
            .collect(),
        other => panic!("{ctx}: expected rows, got {other:?}"),
    }
}

/// ≥ 8 concurrent clients — 4 writers (INSERT and COPY), 4 readers
/// (plain scans + NORMALIZE alignment) — against one served database:
/// every read is a consistent prefix, the final state matches the
/// serial oracle, and the data survives a reopen.
#[test]
fn eight_clients_hammer_one_server_against_the_serial_oracle() {
    let dir = scratch("hammer");
    let db = Database::open(&dir).expect("open db");
    db.sql("CREATE TABLE ev (w int, seq int, ts int, te int)")
        .expect("create");
    let server = Server::bind(db.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let handle = server.spawn();
    let done = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let addr = addr.clone();
        let dir = dir.clone();
        writers.push(thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("writer connect");
            for s in 0..BATCHES {
                let affected = if s % 2 == 0 {
                    let vals: Vec<String> = (0..BATCH)
                        .map(|i| {
                            let (w, s, ts, te) = row_for(w, s, i);
                            format!("({w}, {s}, {ts}, {te})")
                        })
                        .collect();
                    exec_retry(
                        &mut c,
                        &format!("INSERT INTO ev VALUES {}", vals.join(", ")),
                    )
                } else {
                    let path = dir.join(format!("w{w}-s{s}.csv"));
                    let mut text = String::new();
                    for i in 0..BATCH {
                        let (w, s, ts, te) = row_for(w, s, i);
                        text.push_str(&format!("{w},{s},{ts},{te}\n"));
                    }
                    std::fs::write(&path, text).expect("write csv");
                    exec_retry(&mut c, &format!("COPY ev FROM '{}'", path.display()))
                };
                assert_eq!(
                    affected,
                    Response::Affected(BATCH as u64),
                    "writer {w} batch {s}"
                );
            }
            let _ = c.quit();
        }));
    }

    let mut readers = Vec::new();
    for r in 0..READERS {
        let addr = addr.clone();
        let done = Arc::clone(&done);
        readers.push(thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("reader connect");
            let mut sweeps = 0u32;
            while !done.load(Ordering::Acquire) || sweeps < 3 {
                sweeps += 1;
                // Plain scan: the statement's heap snapshot must be a
                // consistent prefix of every writer's batches.
                let pairs = pairs_of(
                    exec_retry(&mut c, "SELECT w, seq FROM ev"),
                    &format!("reader {r} scan"),
                );
                assert_consistent_prefix(&pairs, &format!("reader {r} scan {sweeps}"));
                // Alignment query: NORMALIZE self-join — both sides run
                // on the *same* statement snapshot, so the adjusted
                // output's (w, seq) lineage is still a consistent
                // prefix even while appends land mid-query.
                let aligned = pairs_of(
                    exec_retry(
                        &mut c,
                        "SELECT w, seq FROM (ev r1 NORMALIZE ev r2 USING(w)) x",
                    ),
                    &format!("reader {r} normalize"),
                );
                let mut distinct: BTreeMap<i64, std::collections::BTreeSet<i64>> = BTreeMap::new();
                for (w, s) in aligned {
                    distinct.entry(w).or_default().insert(s);
                }
                for (w, seqs) in distinct {
                    let k = seqs.len() as i64;
                    assert!(
                        seqs.iter().copied().eq(0..k),
                        "reader {r}: normalize saw non-prefix batches {seqs:?} for writer {w}"
                    );
                }
            }
            let _ = c.quit();
        }));
    }

    for t in writers {
        t.join().expect("writer thread");
    }
    done.store(true, Ordering::Release);
    for t in readers {
        t.join().expect("reader thread");
    }

    // Serial oracle: the final multiset must be exactly the rows a
    // serial execution of the same batches would have appended.
    let mut expect: BTreeMap<(i64, i64, i64, i64), usize> = BTreeMap::new();
    for w in 0..WRITERS {
        for s in 0..BATCHES {
            for i in 0..BATCH {
                *expect.entry(row_for(w, s, i)).or_default() += 1;
            }
        }
    }
    let mut c = Client::connect(&addr).expect("oracle connect");
    let got = match exec_retry(&mut c, "SELECT w, seq, ts, te FROM ev") {
        Response::Rows { rows, .. } => rows,
        other => panic!("oracle scan: {other:?}"),
    };
    assert_eq!(got.len(), WRITERS * BATCHES * BATCH, "final row count");
    let mut actual: BTreeMap<(i64, i64, i64, i64), usize> = BTreeMap::new();
    for row in got {
        let f = |i: usize| row[i].as_deref().unwrap().parse::<i64>().unwrap();
        *actual.entry((f(0), f(1), f(2), f(3))).or_default() += 1;
    }
    assert_eq!(
        actual, expect,
        "final state diverges from the serial oracle"
    );
    let _ = c.quit();
    handle.stop();

    // Durability: close and reopen the directory; the oracle holds.
    db.close().expect("close");
    drop(db);
    let db = Database::open(&dir).expect("reopen");
    let n = db
        .table("ev")
        .expect("table")
        .collect()
        .expect("collect")
        .rel()
        .len();
    assert_eq!(n, WRITERS * BATCHES * BATCH, "rows after reopen");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scoped sessions keep the pools open for each other: closing the
/// database from one session while another is mid-stream must not break
/// the survivor (satellite: checkpoint-on-Drop only at last close).
#[test]
fn close_from_one_client_leaves_the_other_serving() {
    let dir = scratch("last-close");
    let db = Database::open(&dir).expect("open db");
    db.sql("CREATE TABLE t (x int, ts int, te int)")
        .expect("create");
    db.sql("INSERT INTO t VALUES (1, 0, 5), (2, 3, 9)")
        .expect("seed");
    let server = Server::bind(db.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let handle = server.spawn();

    let mut a = Client::connect(&addr).expect("a");
    let mut b = Client::connect(&addr).expect("b");
    assert!(matches!(
        a.execute("SELECT x FROM t").unwrap(),
        Response::Rows { .. }
    ));
    // `close()` with live sessions checkpoints but leaves pools open.
    db.close().expect("close with live sessions");
    assert!(matches!(
        b.execute("SELECT x FROM t").unwrap(),
        Response::Rows { .. }
    ));
    assert_eq!(
        b.execute("INSERT INTO t VALUES (3, 1, 2)").unwrap(),
        Response::Affected(1)
    );
    let _ = a.quit();
    let _ = b.quit();
    handle.stop();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Snapshot isolation on [`Database`] directly: one appender commits
    /// whole batches while concurrent readers scan — every reader result
    /// is a batch-aligned prefix (length divisible by the batch size,
    /// values exactly `0..len` in append order).
    #[test]
    fn concurrent_readers_see_only_whole_batches(
        batch in 1usize..7,
        batches in 4usize..16,
        readers in 2usize..5,
    ) {
        let dir = scratch("proptest-snapshot");
        let db = Database::open(&dir).expect("open db");
        db.sql("CREATE TABLE t (x int, ts int, te int)").expect("create");
        let done = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::new();
        for _ in 0..readers {
            let db = db.clone();
            let done = Arc::clone(&done);
            threads.push(thread::spawn(move || {
                let mut sweeps = 0u32;
                while !done.load(Ordering::Acquire) || sweeps < 2 {
                    sweeps += 1;
                    let rel = db
                        .table("t")
                        .expect("table")
                        .collect()
                        .expect("collect")
                        .rel()
                        .clone();
                    assert_eq!(
                        rel.len() % batch,
                        0,
                        "reader saw a torn batch: {} rows, batch {batch}",
                        rel.len()
                    );
                    for (j, row) in rel.iter().enumerate() {
                        assert_eq!(
                            row.get(0),
                            &Value::Int(j as i64),
                            "reader prefix out of order at {j}"
                        );
                    }
                }
            }));
        }

        for b in 0..batches {
            let rows: Vec<Row> = (0..batch)
                .map(|i| {
                    let j = (b * batch + i) as i64;
                    Row::new(vec![Value::Int(j), Value::Int(j), Value::Int(j + 1)])
                })
                .collect();
            db.insert_rows("t", rows).expect("append batch");
        }
        done.store(true, Ordering::Release);
        for t in threads {
            t.join().expect("reader thread");
        }
        let rel = db.table("t").unwrap().collect().unwrap().rel().clone();
        prop_assert_eq!(rel.len(), batch * batches);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
