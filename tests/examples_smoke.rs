//! Golden-output gate for `examples/`: each example is run (in release,
//! so CI exercises the optimized pipeline) and its stdout is diffed
//! against the committed golden file under `tests/golden/` — API
//! refactors cannot silently change example behavior.
//!
//! To bless new output after an intentional change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test examples_smoke
//! ```

use std::path::Path;
use std::process::Command;

/// The checked-in examples. Listing them explicitly (rather than globbing
/// `examples/`) makes a missing or renamed example fail loudly here.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "employee_history",
    "hotel_reservations",
    "lineage_audit",
    "calendar_dates",
    "sql_interface",
];

#[test]
fn all_examples_match_their_golden_output() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let bless = std::env::var("UPDATE_GOLDENS").is_ok_and(|v| !v.is_empty() && v != "0");

    let listed: std::collections::BTreeSet<_> = EXAMPLES.iter().map(|e| e.to_string()).collect();
    let on_disk: std::collections::BTreeSet<_> = std::fs::read_dir(manifest_dir.join("examples"))
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension()? == "rs").then(|| path.file_stem()?.to_str().map(str::to_string))?
        })
        .collect();
    assert_eq!(
        listed, on_disk,
        "EXAMPLES list out of sync with the examples/ directory"
    );

    let golden_dir = manifest_dir.join("tests").join("golden");
    if bless {
        std::fs::create_dir_all(&golden_dir).expect("create tests/golden");
    }

    let mut failures = Vec::new();
    for example in EXAMPLES {
        // Pin the examples to the serial default: EXPLAIN output depends on
        // the `threads` GUC, and golden files can only match one setting.
        // Parallel EXPLAIN rendering has its own golden test
        // (tests/explain_parallel.rs).
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .env("TEMPORAL_THREADS", "1")
            .args(["run", "--release", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr),
        );
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();

        let golden_path = golden_dir.join(format!("{example}.txt"));
        if bless {
            std::fs::write(&golden_path, &stdout)
                .unwrap_or_else(|e| panic!("write {}: {e}", golden_path.display()));
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run UPDATE_GOLDENS=1 cargo test \
                 --test examples_smoke to create it",
                golden_path.display()
            )
        });
        if stdout != golden {
            failures.push(format!(
                "example {example} stdout diverged from {}:\n{}",
                golden_path.display(),
                first_diff(&golden, &stdout)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{}\n(if the change is intentional: UPDATE_GOLDENS=1 cargo test --test examples_smoke)",
        failures.join("\n\n")
    );
}

/// Render the first differing line with context, to keep failures readable.
fn first_diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            return format!(
                "first difference at line {}:\n  expected: {}\n  actual:   {}",
                i + 1,
                e.unwrap_or("<eof>"),
                a.unwrap_or("<eof>"),
            );
        }
    }
    "outputs differ in trailing whitespace".to_string()
}
