//! Hash join on equi-key pairs with an optional residual predicate.
//!
//! The reduction rules conjoin `r.T = s.T` to every θ, so reduced temporal
//! joins always expose hashable keys — the mechanism behind the paper's
//! fast Fig. 15d results.
//!
//! Under a parallel [`ExecutionState`] the batch path partitions both
//! sides: the build table is assembled from per-worker hash shards
//! (disjoint key ranges, merged without overlap), and the probe input is
//! split into contiguous morsels probed on workers against the shared
//! read-only table. Matched-flags on the build side are atomic booleans —
//! monotonic false→true marks, order-independent — so even Right/Full
//! joins probe in parallel and the trailing unmatched-scan observes the
//! same flags as a serial probe. Morsel outputs concatenate in input
//! order, keeping the parallel probe row-identical to the serial one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::workers::{par_run, split_ranges};
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::expr::{CompiledPred, Expr};
use crate::hashing::{FxHashMap, FxHasher};
use crate::plan::JoinType;
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

enum Phase {
    Probe,
    /// Morsel-parallel probe output, drained a batch at a time.
    Buffered(std::vec::IntoIter<Row>),
    BuildUnmatched(usize),
    Done,
}

/// Hash join. Builds on the right input, probes with the left.
pub struct HashJoinExec {
    left: BoxedExec,
    right: Option<BoxedExec>,
    /// `(left column, right column)` equality pairs; SQL semantics (NULL
    /// keys never match).
    keys: Vec<(usize, usize)>,
    /// Extra predicate over the concatenated row.
    residual: Option<Expr>,
    join_type: JoinType,
    schema: Schema,
    left_width: usize,
    right_width: usize,

    table: FxHashMap<Vec<Value>, Vec<usize>>,
    build_rows: Vec<Row>,
    build_matched: Vec<AtomicBool>,
    built: bool,

    cur_left: Option<Row>,
    cur_cands: Vec<usize>,
    cand_pos: usize,
    cur_left_matched: bool,
    phase: Phase,
}

/// One shard's build input: `(key, build index)` pairs, indices ascending.
type ShardEntries = Vec<(Vec<Value>, usize)>;

/// Deterministic shard of a build key (FxHash, same per process).
fn key_shard(key: &[Value], shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() as usize) % shards
}

impl HashJoinExec {
    pub fn new(
        left: BoxedExec,
        right: BoxedExec,
        keys: Vec<(usize, usize)>,
        residual: Option<Expr>,
        join_type: JoinType,
    ) -> Self {
        let left_width = left.schema().len();
        let right_width = right.schema().len();
        let schema = if join_type.emits_right() {
            left.schema().concat(right.schema())
        } else {
            left.schema().clone()
        };
        HashJoinExec {
            left,
            right: Some(right),
            keys,
            residual,
            join_type,
            schema,
            left_width,
            right_width,
            table: FxHashMap::default(),
            build_rows: Vec::new(),
            build_matched: Vec::new(),
            built: false,
            cur_left: None,
            cur_cands: Vec::new(),
            cand_pos: 0,
            cur_left_matched: false,
            phase: Phase::Probe,
        }
    }

    fn build(&mut self, state: &ExecutionState, batched: bool) -> EngineResult<()> {
        if self.built {
            return Ok(());
        }
        let mut right = self.right.take().expect("build called once");
        let rows = if batched {
            crate::exec::collect_rows_batched(right.as_mut(), state)?
        } else {
            crate::exec::collect_rows(right.as_mut(), state)?
        };
        if batched && state.parallel(rows.len()) {
            self.build_parallel(state, &rows)?;
        } else {
            for (idx, row) in rows.iter().enumerate() {
                let key: Vec<Value> = self.keys.iter().map(|&(_, r)| row[r].clone()).collect();
                // NULL keys never join, but the row may still surface as
                // unmatched for Right/Full joins.
                if !key.iter().any(Value::is_null) {
                    self.table.entry(key).or_default().push(idx);
                }
            }
        }
        self.build_matched = (0..rows.len()).map(|_| AtomicBool::new(false)).collect();
        self.build_rows = rows;
        self.built = true;
        Ok(())
    }

    /// Partitioned build: extract keys over contiguous chunks on workers,
    /// bucketing each chunk's keys by a deterministic key hash, then let
    /// each worker own one hash shard (disjoint key sets) and build its map
    /// from the moved-in buckets — no key is cloned or rescanned. Chunks
    /// are transposed in order and bucket entries carry ascending build
    /// indices, so candidate lists stay in build-row order — the same table
    /// a serial build produces.
    fn build_parallel(&mut self, state: &ExecutionState, rows: &[Row]) -> EngineResult<()> {
        let threads = state.threads();
        let ranges = split_ranges(rows.len(), threads);
        let keys = &self.keys;
        // chunk → shard → (key, build index), indices ascending per bucket.
        let chunk_buckets = par_run(threads, ranges.len(), |i| {
            let (a, b) = ranges[i];
            let mut buckets: Vec<Vec<(Vec<Value>, usize)>> = vec![Vec::new(); threads];
            for (idx, row) in rows[a..b].iter().enumerate() {
                let key: Vec<Value> = keys.iter().map(|&(_, r)| row[r].clone()).collect();
                // NULL keys never join, but the row may still surface as
                // unmatched for Right/Full joins.
                if !key.iter().any(Value::is_null) {
                    let shard = key_shard(&key, threads);
                    buckets[shard].push((key, a + idx));
                }
            }
            Ok(buckets)
        })?;
        // Transpose by move: shard → entries in ascending index order
        // (chunks are visited in range order).
        let mut shard_entries: Vec<ShardEntries> = vec![Vec::new(); threads];
        for mut chunk in chunk_buckets {
            for (shard, bucket) in chunk.drain(..).enumerate() {
                shard_entries[shard].extend(bucket);
            }
        }
        let shard_slots: Vec<Mutex<Option<ShardEntries>>> = shard_entries
            .into_iter()
            .map(|e| Mutex::new(Some(e)))
            .collect();
        let shards = par_run(threads, threads, |w| {
            let entries = shard_slots[w]
                .lock()
                .expect("shard input claimed once")
                .take()
                .expect("each shard consumed once");
            let mut m: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
            for (key, idx) in entries {
                m.entry(key).or_default().push(idx);
            }
            Ok(m)
        })?;
        state.note_partitions(ranges.len() + threads);
        for m in shards {
            self.table.extend(m);
        }
        Ok(())
    }

    fn residual_ok(&self, combined: &Row) -> EngineResult<bool> {
        match &self.residual {
            None => Ok(true),
            Some(e) => e.eval_pred(combined.values()),
        }
    }

    /// The immutable probe context: everything a worker needs to probe a
    /// morsel of left rows against the built table.
    fn probe_side(&self) -> ProbeSide<'_> {
        ProbeSide {
            table: &self.table,
            build_rows: &self.build_rows,
            build_matched: &self.build_matched,
            keys: &self.keys,
            residual: self.residual.as_ref(),
            join_type: self.join_type,
            right_width: self.right_width,
        }
    }
}

/// Shared read-only probe state (see [`HashJoinExec::probe_side`]). All
/// fields are `Sync`; matched-marks go through atomics, so any number of
/// workers can probe disjoint morsels concurrently.
struct ProbeSide<'a> {
    table: &'a FxHashMap<Vec<Value>, Vec<usize>>,
    build_rows: &'a [Row],
    build_matched: &'a [AtomicBool],
    keys: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
    join_type: JoinType,
    right_width: usize,
}

impl ProbeSide<'_> {
    /// Probe a run of left rows. Candidate lists are read in place (no
    /// per-row clone). Simple residuals (every reduced temporal condition:
    /// equality leftovers, interval overlaps) are compiled once and
    /// evaluated over the *pair* of rows, so the combined row is only
    /// materialized for candidates that actually join — late
    /// materialization, the batch path's main win on high-fanout probes.
    fn probe(&self, lrows: &[Row], left_width: usize) -> EngineResult<Vec<Row>> {
        let compiled = self.residual.map(|e| (CompiledPred::compile(e), e));
        let mut out: Vec<Row> = Vec::new();
        let mut key: Vec<Value> = Vec::with_capacity(self.keys.len());
        // Scratch for the general (non-compilable) residual: candidate
        // build indices and their materialized combined rows.
        let mut cand_idx: Vec<usize> = Vec::new();
        let mut combined: Vec<Row> = Vec::new();
        for l in lrows {
            key.clear();
            key.extend(self.keys.iter().map(|&(lk, _)| l[lk].clone()));
            let cands: &[usize] = if key.iter().any(Value::is_null) {
                &[]
            } else {
                self.table.get(&key).map(Vec::as_slice).unwrap_or(&[])
            };
            let mut matched = false;
            match &compiled {
                Some((Some(pred), _)) => {
                    // Compiled fast path: evaluate over references, concat
                    // only on a pass.
                    for &bi in cands {
                        let build = &self.build_rows[bi];
                        if !pred.matches_pair(l.values(), build.values(), left_width)? {
                            continue;
                        }
                        matched = true;
                        self.build_matched[bi].store(true, Ordering::Relaxed);
                        match self.join_type {
                            JoinType::Inner | JoinType::Left | JoinType::Right | JoinType::Full => {
                                out.push(l.concat(build));
                            }
                            JoinType::Semi => {
                                out.push(l.clone());
                                break;
                            }
                            JoinType::Anti => break,
                        }
                    }
                }
                Some((None, e)) if matches!(self.join_type, JoinType::Semi | JoinType::Anti) => {
                    // Semi/Anti stop at the first passing candidate; the
                    // row path therefore never evaluates the residual past
                    // it (nor its errors). Evaluate candidate-by-candidate
                    // to match — batching buys nothing here anyway (at
                    // most one output row per probe row).
                    for &bi in cands {
                        let c = l.concat(&self.build_rows[bi]);
                        if !e.eval_pred(c.values())? {
                            continue;
                        }
                        matched = true;
                        self.build_matched[bi].store(true, Ordering::Relaxed);
                        if self.join_type == JoinType::Semi {
                            out.push(l.clone());
                        }
                        break;
                    }
                }
                Some((None, e)) => {
                    // General residual: materialize this row's candidates
                    // and evaluate the predicate vectorized over them (the
                    // row path also evaluates every candidate here).
                    cand_idx.clear();
                    cand_idx.extend_from_slice(cands);
                    combined.clear();
                    combined.extend(cand_idx.iter().map(|&bi| l.concat(&self.build_rows[bi])));
                    let pass = e.eval_pred_batch(&combined)?;
                    for ((&bi, c), ok) in cand_idx.iter().zip(combined.drain(..)).zip(pass) {
                        if !ok {
                            continue;
                        }
                        matched = true;
                        self.build_matched[bi].store(true, Ordering::Relaxed);
                        match self.join_type {
                            JoinType::Inner | JoinType::Left | JoinType::Right | JoinType::Full => {
                                out.push(c);
                            }
                            JoinType::Semi | JoinType::Anti => unreachable!("handled above"),
                        }
                    }
                }
                None => {
                    for &bi in cands {
                        matched = true;
                        self.build_matched[bi].store(true, Ordering::Relaxed);
                        match self.join_type {
                            JoinType::Inner | JoinType::Left | JoinType::Right | JoinType::Full => {
                                out.push(l.concat(&self.build_rows[bi]));
                            }
                            JoinType::Semi => {
                                out.push(l.clone());
                                break;
                            }
                            JoinType::Anti => break,
                        }
                    }
                }
            }
            if !matched {
                match self.join_type {
                    JoinType::Left | JoinType::Full => out.push(l.concat_nulls(self.right_width)),
                    JoinType::Anti => out.push(l.clone()),
                    _ => {}
                }
            }
        }
        Ok(out)
    }
}

impl ExecNode for HashJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        self.build(state, false)?;
        loop {
            match self.phase {
                Phase::Done => return Ok(None),
                Phase::Buffered(_) => unreachable!("row path never buffers"),
                Phase::BuildUnmatched(ref mut i) => {
                    while *i < self.build_rows.len() {
                        let idx = *i;
                        *i += 1;
                        if !self.build_matched[idx].load(Ordering::Relaxed) {
                            return Ok(Some(self.build_rows[idx].nulls_concat(self.left_width)));
                        }
                    }
                    self.phase = Phase::Done;
                }
                Phase::Probe => {
                    if self.cur_left.is_none() {
                        match self.left.next(state)? {
                            Some(l) => {
                                let key: Vec<Value> =
                                    self.keys.iter().map(|&(lk, _)| l[lk].clone()).collect();
                                self.cur_cands = if key.iter().any(Value::is_null) {
                                    Vec::new()
                                } else {
                                    self.table.get(&key).cloned().unwrap_or_default()
                                };
                                self.cand_pos = 0;
                                self.cur_left_matched = false;
                                self.cur_left = Some(l);
                            }
                            None => {
                                self.phase = if self.join_type.emits_right_unmatched() {
                                    Phase::BuildUnmatched(0)
                                } else {
                                    Phase::Done
                                };
                                continue;
                            }
                        }
                    }
                    let left_row = self.cur_left.as_ref().expect("set above").clone();
                    let mut anti_matched = false;
                    while self.cand_pos < self.cur_cands.len() {
                        let idx = self.cur_cands[self.cand_pos];
                        self.cand_pos += 1;
                        let combined = left_row.concat(&self.build_rows[idx]);
                        if self.residual_ok(&combined)? {
                            self.cur_left_matched = true;
                            self.build_matched[idx].store(true, Ordering::Relaxed);
                            match self.join_type {
                                JoinType::Inner
                                | JoinType::Left
                                | JoinType::Right
                                | JoinType::Full => return Ok(Some(combined)),
                                JoinType::Semi => {
                                    self.cur_left = None;
                                    return Ok(Some(left_row));
                                }
                                JoinType::Anti => {
                                    anti_matched = true;
                                    break;
                                }
                            }
                        }
                    }
                    let matched = self.cur_left_matched || anti_matched;
                    self.cur_left = None;
                    if !matched {
                        match self.join_type {
                            JoinType::Left | JoinType::Full => {
                                return Ok(Some(left_row.concat_nulls(self.right_width)))
                            }
                            JoinType::Anti => return Ok(Some(left_row)),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// Batch path: probe a whole left batch per call (serial), or — under
    /// a parallel state — drain the left side once and probe contiguous
    /// morsels on workers, then emit the buffered output a batch at a
    /// time. Candidate lists are read in place (no per-row clone), and the
    /// residual predicate is evaluated once, vectorized, over every
    /// candidate of a batch.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        self.build(state, true)?;
        loop {
            match self.phase {
                Phase::Done => return Ok(None),
                Phase::Buffered(ref mut it) => {
                    let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
                    if chunk.is_empty() {
                        self.phase = if self.join_type.emits_right_unmatched() {
                            Phase::BuildUnmatched(0)
                        } else {
                            Phase::Done
                        };
                        continue;
                    }
                    return Ok(Some(RowBatch::new(self.schema.clone(), chunk)));
                }
                Phase::BuildUnmatched(ref mut i) => {
                    let mut out = Vec::new();
                    while *i < self.build_rows.len() && out.len() < BATCH_SIZE {
                        let idx = *i;
                        *i += 1;
                        if !self.build_matched[idx].load(Ordering::Relaxed) {
                            out.push(self.build_rows[idx].nulls_concat(self.left_width));
                        }
                    }
                    if matches!(self.phase, Phase::BuildUnmatched(i) if i >= self.build_rows.len())
                    {
                        self.phase = Phase::Done;
                    }
                    if !out.is_empty() {
                        return Ok(Some(RowBatch::new(self.schema.clone(), out)));
                    }
                }
                Phase::Probe if state.threads() > 1 => {
                    // Morsel-parallel probe: materialize the probe input,
                    // split it into contiguous morsels, probe them on
                    // workers and concatenate in morsel order.
                    let lrows = crate::exec::collect_rows_batched(self.left.as_mut(), state)?;
                    let out = if state.parallel(lrows.len()) {
                        let threads = state.threads();
                        let ranges = split_ranges(lrows.len(), threads);
                        let side = self.probe_side();
                        let left_width = self.left_width;
                        let chunks = par_run(threads, ranges.len(), |i| {
                            let (a, b) = ranges[i];
                            side.probe(&lrows[a..b], left_width)
                        })?;
                        state.note_partitions(ranges.len());
                        chunks.concat()
                    } else {
                        self.probe_side().probe(&lrows, self.left_width)?
                    };
                    self.phase = Phase::Buffered(out.into_iter());
                }
                Phase::Probe => {
                    let Some(batch) = self.left.next_batch(state)? else {
                        self.phase = if self.join_type.emits_right_unmatched() {
                            Phase::BuildUnmatched(0)
                        } else {
                            Phase::Done
                        };
                        continue;
                    };
                    let out = self.probe_side().probe(batch.rows(), self.left_width)?;
                    if !out.is_empty() {
                        return Ok(Some(RowBatch::new(self.schema.clone(), out)));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, ExecutionState, NestedLoopJoinExec, SeqScanExec};
    use crate::expr::col;
    use crate::plan::PlannerConfig;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};

    fn scan(vals: &[(i64, i64)]) -> BoxedExec {
        Box::new(SeqScanExec::new(int2_rel(("k", "v"), vals).into_shared()))
    }

    fn run_hash(
        l: &[(i64, i64)],
        r: &[(i64, i64)],
        jt: JoinType,
        residual: Option<Expr>,
    ) -> Relation {
        let node = HashJoinExec::new(scan(l), scan(r), vec![(0, 0)], residual, jt);
        collect(Box::new(node), &ExecutionState::default()).unwrap()
    }

    /// Same join via nested loop, as the semantics oracle.
    fn run_nl(
        l: &[(i64, i64)],
        r: &[(i64, i64)],
        jt: JoinType,
        residual: Option<Expr>,
    ) -> Relation {
        let cond = match residual {
            None => col(0).eq(col(2)),
            Some(res) => col(0).eq(col(2)).and(res),
        };
        let node = NestedLoopJoinExec::new(scan(l), scan(r), jt, Some(cond));
        collect(Box::new(node), &ExecutionState::default()).unwrap()
    }

    #[test]
    fn agrees_with_nested_loop_on_all_join_types() {
        let l = [(1, 10), (2, 20), (2, 21), (4, 40)];
        let r = [(2, 200), (2, 201), (3, 300)];
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Right,
            JoinType::Full,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let h = run_hash(&l, &r, jt, None);
            let n = run_nl(&l, &r, jt, None);
            assert!(h.same_bag(&n), "join type {jt:?}: {h} vs {n}");
        }
    }

    #[test]
    fn residual_predicate_applies() {
        let l = [(2, 20), (2, 25)];
        let r = [(2, 22), (2, 24)];
        // residual: l.v < r.v
        let residual = Some(col(1).lt(col(3)));
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Full,
            JoinType::Anti,
        ] {
            let h = run_hash(&l, &r, jt, residual.clone());
            let n = run_nl(&l, &r, jt, residual.clone());
            assert!(h.same_bag(&n), "join type {jt:?}");
        }
    }

    #[test]
    fn null_keys_never_match_but_surface_in_outer() {
        let l_rel = Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Int(2), Value::Int(2)],
            ],
        )
        .unwrap()
        .into_shared();
        let r_rel = Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("w", DataType::Int),
            ]),
            vec![
                vec![Value::Null, Value::Int(9)],
                vec![Value::Int(2), Value::Int(8)],
            ],
        )
        .unwrap()
        .into_shared();
        let node = HashJoinExec::new(
            Box::new(SeqScanExec::new(l_rel)),
            Box::new(SeqScanExec::new(r_rel)),
            vec![(0, 0)],
            None,
            JoinType::Full,
        );
        let out = collect(Box::new(node), &ExecutionState::default()).unwrap();
        // matched (2,2,2,8); unmatched left (ω,1,ω,ω); unmatched right (ω,ω,ω,9)
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_sides() {
        assert_eq!(run_hash(&[], &[(1, 1)], JoinType::Full, None).len(), 1);
        assert_eq!(run_hash(&[(1, 1)], &[], JoinType::Full, None).len(), 1);
        assert_eq!(run_hash(&[], &[], JoinType::Full, None).len(), 0);
        assert_eq!(run_hash(&[(1, 1)], &[], JoinType::Anti, None).len(), 1);
    }

    #[test]
    fn batch_path_is_row_for_row_identical_on_all_join_types() {
        use crate::exec::collect_rowwise;
        let l = [(1, 10), (2, 20), (2, 21), (4, 40), (5, 50)];
        let r = [(2, 200), (2, 201), (3, 300), (5, 55)];
        let residuals = [None, Some(col(1).lt(col(3)))];
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Right,
            JoinType::Full,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            for residual in &residuals {
                let residual = residual.clone();
                let mk = |residual: Option<Expr>| {
                    Box::new(HashJoinExec::new(
                        scan(&l),
                        scan(&r),
                        vec![(0, 0)],
                        residual,
                        jt,
                    ))
                };
                let rows =
                    collect_rowwise(mk(residual.clone()), &ExecutionState::default()).unwrap();
                let batches = collect(mk(residual), &ExecutionState::default()).unwrap();
                assert_eq!(rows.rows(), batches.rows(), "join type {jt:?}");
            }
        }
    }

    #[test]
    fn parallel_probe_is_row_identical_to_serial() {
        // Enough rows to trip the parallel gate with parallel_min_rows=1,
        // duplicate keys for fanout, NULL keys, unmatched rows both sides.
        let l: Vec<(i64, i64)> = (0..500).map(|i| (i % 23, i)).collect();
        let r: Vec<(i64, i64)> = (0..300).map(|i| (i % 31, 1000 + i)).collect();
        let par_state = ExecutionState::new(PlannerConfig {
            threads: 4,
            parallel_min_rows: 1,
            ..Default::default()
        });
        let serial_state = ExecutionState::default();
        let residuals = [None, Some(col(1).lt(col(3)))];
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Right,
            JoinType::Full,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            for residual in &residuals {
                let mk = || {
                    Box::new(HashJoinExec::new(
                        scan(&l),
                        scan(&r),
                        vec![(0, 0)],
                        residual.clone(),
                        jt,
                    ))
                };
                let serial = collect(mk(), &serial_state).unwrap();
                let par = collect(mk(), &par_state).unwrap();
                assert_eq!(serial.rows(), par.rows(), "join type {jt:?}");
            }
        }
        let (_, _, partitions) = par_state.stats.snapshot();
        assert!(partitions > 0, "parallel probe must actually partition");
    }
}
