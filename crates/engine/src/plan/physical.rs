//! Physical plans: the engine's "plan tree" with concrete algorithm
//! choices, executable into a Volcano iterator tree.

use std::sync::Arc;

use crate::error::EngineResult;
use crate::exec::{
    collect, BoxedExec, DistinctExec, ExchangeExec, ExecutionState, FilterExec, HashAggregateExec,
    HashJoinExec, HashSetOpExec, IntervalJoinExec, LimitExec, MergeJoinExec, NestedLoopJoinExec,
    ProjectExec, SeqScanExec, SortExec, StorageScanExec,
};
use crate::expr::{AggCall, Expr, SortKey};
use crate::plan::cost::{CostModel, PlanStats};
use crate::plan::logical::ExtensionNode;
use crate::plan::{JoinType, PlannerConfig, SetOpKind};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::storage::StoredTable;

/// A physical (executable) plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    SeqScan {
        rel: Arc<Relation>,
        label: String,
    },
    /// Streaming scan over a heap-file table: pages decode into batches
    /// through the table's buffer pool, never materializing the heap.
    StorageScan {
        table: Arc<StoredTable>,
        label: String,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<SortKey>,
    },
    HashAggregate {
        input: Box<PhysicalPlan>,
        group: Vec<Expr>,
        aggs: Vec<AggCall>,
        schema: Schema,
    },
    Distinct {
        input: Box<PhysicalPlan>,
    },
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        condition: Option<Expr>,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        keys: Vec<(usize, usize)>,
        residual: Option<Expr>,
    },
    /// Children are already wrapped in the required sorts by the planner.
    MergeJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        keys: Vec<(usize, usize)>,
        residual: Option<Expr>,
    },
    /// Sweep-based interval overlap join (opt-in; the paper's future-work
    /// extension). Sorts internally.
    IntervalJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        endpoints: (usize, usize, usize, usize), // (l_ts, l_te, r_ts, r_te)
        residual: Option<Expr>,
    },
    HashSetOp {
        kind: SetOpKind,
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        n: usize,
    },
    Extension {
        node: Arc<dyn ExtensionNode>,
        children: Vec<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Output schema.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => rel.schema().clone(),
            PhysicalPlan::StorageScan { table, .. } => table.schema().clone(),
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::Project { schema, .. } => schema.clone(),
            PhysicalPlan::Sort { input, .. } => input.schema(),
            PhysicalPlan::HashAggregate { schema, .. } => schema.clone(),
            PhysicalPlan::Distinct { input } => input.schema(),
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                ..
            } => {
                if join_type.emits_right() {
                    left.schema().concat(&right.schema())
                } else {
                    left.schema()
                }
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                ..
            } => {
                if join_type.emits_right() {
                    left.schema().concat(&right.schema())
                } else {
                    left.schema()
                }
            }
            PhysicalPlan::MergeJoin { left, right, .. } => left.schema().concat(&right.schema()),
            PhysicalPlan::IntervalJoin { left, right, .. } => left.schema().concat(&right.schema()),
            PhysicalPlan::HashSetOp { left, .. } => left.schema(),
            PhysicalPlan::Limit { input, .. } => input.schema(),
            PhysicalPlan::Extension { node, .. } => node.schema(),
        }
    }

    /// Direct children in left-to-right order (empty for leaves) — the one
    /// place that knows each variant's child layout; every generic
    /// traversal below goes through it.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. } | PhysicalPlan::StorageScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. } => vec![input],
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::IntervalJoin { left, right, .. }
            | PhysicalPlan::HashSetOp { left, right, .. } => vec![left, right],
            PhysicalPlan::Extension { children, .. } => children.iter().collect(),
        }
    }

    /// Build the executor tree for one execution under `state`. Plans
    /// carry no per-execution state (a spool's cache lives in `state`'s
    /// registry), so the same plan can be executed repeatedly — each run
    /// under a fresh [`ExecutionState`] observes current table contents.
    /// When the state's GUC snapshot enables parallelism, scan pipelines
    /// are partitioned into morsels behind an exchange operator.
    pub fn execute(&self, state: &ExecutionState) -> EngineResult<BoxedExec> {
        self.build_subtree(state)
    }

    /// Recursive build entry: partition this subtree behind an exchange
    /// when it is a scan pipeline worth splitting, otherwise build the
    /// serial operator and recurse on children (which get the same
    /// chance).
    fn build_subtree(&self, state: &ExecutionState) -> EngineResult<BoxedExec> {
        if state.threads() > 1 {
            if let Some(exec) = self.build_parallel(state)? {
                return Ok(exec);
            }
        }
        self.build_exec_tree(state)
    }

    /// If this subtree is a partitionable scan pipeline (filter/project
    /// chains over a single scan) large enough to be worth splitting,
    /// build it as up to `state.threads()` contiguous-range partitions
    /// behind an [`ExchangeExec`]; otherwise `None`. Partitions concatenate
    /// in input order, so the exchange output is row-identical to the
    /// serial pipeline.
    fn build_parallel(&self, state: &ExecutionState) -> EngineResult<Option<BoxedExec>> {
        let Some(units) = self.pipeline_units() else {
            return Ok(None);
        };
        let rows = self.pipeline_rows().unwrap_or(0);
        if !state.parallel(rows) {
            return Ok(None);
        }
        let ranges = crate::exec::workers::split_ranges(units, state.threads());
        if ranges.len() <= 1 {
            return Ok(None);
        }
        let parts = ranges
            .iter()
            .map(|&(a, b)| self.build_ranged(a, b))
            .collect::<EngineResult<Vec<_>>>()?;
        Ok(Some(Box::new(ExchangeExec::new(self.schema(), parts))))
    }

    /// Partition units of a scan pipeline: rows for an in-memory scan,
    /// pages for a storage scan; `None` when the subtree is not a pure
    /// pipeline over a single scan.
    fn pipeline_units(&self) -> Option<usize> {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => Some(rel.len()),
            PhysicalPlan::StorageScan { table, .. } => Some(table.page_count() as usize),
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.pipeline_units()
            }
            _ => None,
        }
    }

    /// Source row count of a scan pipeline (for the parallelism size
    /// gate); `None` when not a pipeline.
    fn pipeline_rows(&self) -> Option<usize> {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => Some(rel.len()),
            PhysicalPlan::StorageScan { table, .. } => Some(table.row_count() as usize),
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.pipeline_rows()
            }
            _ => None,
        }
    }

    /// Build one ranged partition of a scan pipeline: the leaf scan is
    /// restricted to `[start, end)` partition units, the filter/project
    /// chain above it is rebuilt per partition.
    fn build_ranged(&self, start: usize, end: usize) -> EngineResult<BoxedExec> {
        Ok(match self {
            PhysicalPlan::SeqScan { rel, .. } => {
                Box::new(SeqScanExec::with_range(rel.clone(), start, end))
            }
            PhysicalPlan::StorageScan { table, .. } => Box::new(StorageScanExec::with_page_range(
                table.clone(),
                start as u32,
                end as u32,
            )),
            PhysicalPlan::Filter { input, predicate } => Box::new(FilterExec::new(
                input.build_ranged(start, end)?,
                predicate.clone(),
            )),
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
            } => Box::new(ProjectExec::new(
                input.build_ranged(start, end)?,
                exprs.clone(),
                schema.clone(),
            )),
            other => unreachable!("build_ranged on non-pipeline node {other:?}"),
        })
    }

    fn build_exec_tree(&self, state: &ExecutionState) -> EngineResult<BoxedExec> {
        Ok(match self {
            PhysicalPlan::SeqScan { rel, .. } => Box::new(SeqScanExec::new(rel.clone())),
            PhysicalPlan::StorageScan { table, .. } => {
                Box::new(StorageScanExec::new(table.clone()))
            }
            PhysicalPlan::Filter { input, predicate } => Box::new(FilterExec::new(
                input.build_subtree(state)?,
                predicate.clone(),
            )),
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
            } => Box::new(ProjectExec::new(
                input.build_subtree(state)?,
                exprs.clone(),
                schema.clone(),
            )),
            PhysicalPlan::Sort { input, keys } => {
                Box::new(SortExec::new(input.build_subtree(state)?, keys.clone()))
            }
            PhysicalPlan::HashAggregate {
                input,
                group,
                aggs,
                schema,
            } => Box::new(HashAggregateExec::new(
                input.build_subtree(state)?,
                group.clone(),
                aggs.clone(),
                schema.clone(),
            )),
            PhysicalPlan::Distinct { input } => {
                Box::new(DistinctExec::new(input.build_subtree(state)?))
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                condition,
            } => Box::new(NestedLoopJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                *join_type,
                condition.clone(),
            )),
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                keys,
                residual,
            } => Box::new(HashJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                keys.clone(),
                residual.clone(),
                *join_type,
            )),
            PhysicalPlan::MergeJoin {
                left,
                right,
                join_type,
                keys,
                residual,
            } => Box::new(MergeJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                keys.clone(),
                residual.clone(),
                *join_type,
            )),
            PhysicalPlan::IntervalJoin {
                left,
                right,
                join_type,
                endpoints,
                residual,
            } => Box::new(IntervalJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                endpoints.0,
                endpoints.1,
                endpoints.2,
                endpoints.3,
                residual.clone(),
                *join_type,
            )),
            PhysicalPlan::HashSetOp { kind, left, right } => Box::new(HashSetOpExec::new(
                *kind,
                left.build_subtree(state)?,
                right.build_subtree(state)?,
            )?),
            PhysicalPlan::Limit { input, n } => {
                Box::new(LimitExec::new(input.build_subtree(state)?, *n))
            }
            PhysicalPlan::Extension { node, children } => {
                let mut built = Vec::with_capacity(children.len());
                for c in children {
                    built.push(c.build_subtree(state)?);
                }
                node.build_exec(built)?
            }
        })
    }

    /// Execute and materialize the result. Drains the executor tree
    /// batch-wise ([`crate::exec::ExecNode::next_batch`]) — the engine's
    /// default execution path.
    pub fn collect(&self, state: &ExecutionState) -> EngineResult<Relation> {
        collect(self.execute(state)?, state)
    }

    /// Execute and materialize via the row-at-a-time Volcano protocol —
    /// the pre-batch path, kept working so the two protocols can be
    /// differentially tested and benchmarked against each other.
    pub fn collect_rowwise(&self, state: &ExecutionState) -> EngineResult<Relation> {
        crate::exec::collect_rowwise(self.execute(state)?, state)
    }

    /// Estimated rows/cost for this subtree.
    pub fn stats(&self, model: &CostModel) -> PlanStats {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => model.scan(rel.len() as f64),
            PhysicalPlan::StorageScan { table, .. } => model.scan(table.row_count() as f64),
            PhysicalPlan::Filter { input, predicate } => {
                model.filter(input.stats(model), predicate)
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                model.project(input.stats(model), exprs.len())
            }
            PhysicalPlan::Sort { input, .. } => model.sort(input.stats(model)),
            PhysicalPlan::HashAggregate {
                input, group, aggs, ..
            } => model.aggregate(input.stats(model), group.len(), aggs.len()),
            PhysicalPlan::Distinct { input } => model.distinct(input.stats(model)),
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                condition,
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    0,
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                let n_conj = condition.as_ref().map_or(0, |c| c.conjuncts().len());
                model.nested_loop_join(l, r, rows, n_conj)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                keys,
                ..
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    keys.len(),
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                model.hash_join(l, r, rows)
            }
            PhysicalPlan::MergeJoin {
                left,
                right,
                join_type,
                keys,
                ..
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    keys.len(),
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                model.merge_join(l, r, rows)
            }
            PhysicalPlan::IntervalJoin {
                left,
                right,
                join_type,
                ..
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    0,
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                // sort both sides + sweep
                model.merge_join(model.sort(l), model.sort(r), rows)
            }
            PhysicalPlan::HashSetOp { left, right, .. } => {
                model.set_op(left.stats(model), right.stats(model))
            }
            PhysicalPlan::Limit { input, n } => model.limit(input.stats(model), *n),
            PhysicalPlan::Extension { node, children } => {
                let stats: Vec<PlanStats> = children.iter().map(|c| c.stats(model)).collect();
                node.estimate(&stats, model)
            }
        }
    }

    /// Pretty-printed physical plan with row estimates (EXPLAIN).
    pub fn explain(&self) -> String {
        let model = CostModel::default();
        let mut out = String::new();
        self.explain_into(&mut out, 0, &model, None);
        out
    }

    /// EXPLAIN with the parallelism the given GUC snapshot would produce:
    /// a header with the effective worker count, and an `Exchange` line
    /// above every scan pipeline that execution would split into ranged
    /// partitions (`execute` inserts the exchange at build time, so the
    /// plan tree itself stays serial — this prints the execution shape).
    pub fn explain_parallel(&self, config: &PlannerConfig) -> String {
        let state = ExecutionState::new(*config);
        let model = CostModel::default();
        let mut out = format!(
            "Parallelism: threads={} (parallel_min_rows={})\n",
            state.threads(),
            state.parallel_min_rows()
        );
        self.explain_into(&mut out, 0, &model, Some(&state));
        out
    }

    fn explain_into(
        &self,
        out: &mut String,
        indent: usize,
        model: &CostModel,
        par: Option<&ExecutionState>,
    ) {
        // Would execution put an exchange over this pipeline? Mirror the
        // `build_parallel` gate exactly, then print the partition shape and
        // the (serial, per-partition) pipeline below it.
        if let Some(state) = par {
            if state.threads() > 1 {
                if let Some(units) = self.pipeline_units() {
                    let rows = self.pipeline_rows().unwrap_or(0);
                    let ranges = crate::exec::workers::split_ranges(units, state.threads());
                    if state.parallel(rows) && ranges.len() > 1 {
                        let pad = "  ".repeat(indent);
                        out.push_str(&format!(
                            "{pad}Exchange ({} partitions over {} units, gather in order)\n",
                            ranges.len(),
                            units,
                        ));
                        self.explain_into(out, indent + 1, model, None);
                        return;
                    }
                }
            }
        }
        let pad = "  ".repeat(indent);
        let st = self.stats(model);
        let head =
            |name: String| format!("{pad}{name}  (rows≈{:.0} cost≈{:.2})\n", st.rows, st.cost);
        match self {
            PhysicalPlan::SeqScan { rel, label } => {
                out.push_str(&head(format!("SeqScan on {label} [{} rows]", rel.len())));
            }
            PhysicalPlan::StorageScan { table, label } => {
                out.push_str(&head(format!(
                    "StorageScan on {label} [{} pages, {} rows]",
                    table.page_count(),
                    table.row_count()
                )));
            }
            PhysicalPlan::Filter { input, predicate } => {
                out.push_str(&head(format!(
                    "Filter: {}",
                    predicate.display(Some(&input.schema()))
                )));
                input.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::Project { input, .. } => {
                out.push_str(&head("Project".to_string()));
                input.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::Sort { input, keys } => {
                out.push_str(&head(format!("Sort ({} keys)", keys.len())));
                input.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::HashAggregate { input, group, .. } => {
                out.push_str(&head(format!("HashAggregate ({} group cols)", group.len())));
                input.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::Distinct { input } => {
                out.push_str(&head("Distinct".to_string()));
                input.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                ..
            } => {
                out.push_str(&head(format!("NestedLoopJoin[{}]", join_type.name())));
                left.explain_into(out, indent + 1, model, par);
                right.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                keys,
                ..
            } => {
                out.push_str(&head(format!(
                    "HashJoin[{}] on {} key(s)",
                    join_type.name(),
                    keys.len()
                )));
                left.explain_into(out, indent + 1, model, par);
                right.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::MergeJoin {
                left,
                right,
                join_type,
                keys,
                ..
            } => {
                out.push_str(&head(format!(
                    "MergeJoin[{}] on {} key(s)",
                    join_type.name(),
                    keys.len()
                )));
                left.explain_into(out, indent + 1, model, par);
                right.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::IntervalJoin {
                left,
                right,
                join_type,
                ..
            } => {
                out.push_str(&head(format!("IntervalJoin[{}] (sweep)", join_type.name())));
                left.explain_into(out, indent + 1, model, par);
                right.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::HashSetOp { kind, left, right } => {
                out.push_str(&head(format!("HashSetOp[{}]", kind.name())));
                left.explain_into(out, indent + 1, model, par);
                right.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::Limit { input, n } => {
                out.push_str(&head(format!("Limit {n}")));
                input.explain_into(out, indent + 1, model, par);
            }
            PhysicalPlan::Extension { node, children } => {
                out.push_str(&head(node.explain()));
                for c in children {
                    c.explain_into(out, indent + 1, model, par);
                }
            }
        }
    }

    /// Count the nodes of this (single) physical tree satisfying `pred` —
    /// used by tests asserting that composed temporal queries plan without
    /// intermediate materialization barriers.
    pub fn count_nodes(&self, pred: &dyn Fn(&PhysicalPlan) -> bool) -> usize {
        usize::from(pred(self))
            + self
                .children()
                .into_iter()
                .map(|c| c.count_nodes(pred))
                .sum::<usize>()
    }

    /// The name of the join algorithm at the root, if the root is a join —
    /// convenient for tests asserting planner choices (Fig. 13).
    pub fn root_join_algorithm(&self) -> Option<&'static str> {
        match self {
            PhysicalPlan::NestedLoopJoin { .. } => Some("nestloop"),
            PhysicalPlan::HashJoin { .. } => Some("hash"),
            PhysicalPlan::MergeJoin { .. } => Some("merge"),
            PhysicalPlan::IntervalJoin { .. } => Some("interval"),
            _ => None,
        }
    }

    /// Find the first join algorithm in a pre-order walk of the plan.
    pub fn first_join_algorithm(&self) -> Option<&'static str> {
        if let Some(a) = self.root_join_algorithm() {
            return Some(a);
        }
        self.children()
            .into_iter()
            .find_map(|c| c.first_join_algorithm())
    }
}
