//! Name resolution: binds [`Expr::Name`] references to column positions.
//!
//! This is the analyzer pass behind the name-based expression API:
//! `col("team")` / `name("r1.team")` stay symbolic until a plan operator
//! knows its input schema, at which point [`Expr::resolve`] rewrites every
//! named reference into the positional [`Expr::Col`] form the planner and
//! executors work on. Unknown names produce a did-you-mean error listing
//! the closest existing column; ambiguous names report the candidate
//! qualifiers so the user can qualify the reference.

use crate::error::{EngineError, EngineResult};
use crate::expr::Expr;
use crate::schema::Schema;

impl Expr {
    /// Does this expression (still) contain named column references?
    pub fn has_names(&self) -> bool {
        fn walk(e: &Expr) -> bool {
            match e {
                Expr::Name(_) => true,
                Expr::Col(_) | Expr::Lit(_) => false,
                Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
                    walk(a) || walk(b)
                }
                Expr::Not(a) | Expr::Neg(a) => walk(a),
                Expr::Func(_, args) => args.iter().any(walk),
                Expr::Between {
                    expr, low, high, ..
                } => walk(expr) || walk(low) || walk(high),
                Expr::IsNull { expr, .. } => walk(expr),
            }
        }
        walk(self)
    }

    /// A copy with every [`Expr::Name`] bound to its position in `schema`
    /// (the resolved [`Expr::Col`] form). Positional references are left
    /// untouched. Unknown names error with a did-you-mean suggestion,
    /// ambiguous ones with the qualified candidates.
    pub fn resolve(&self, schema: &Schema) -> EngineResult<Expr> {
        match self {
            Expr::Name(n) => Ok(Expr::Col(resolve_name(n, schema)?)),
            Expr::Col(_) | Expr::Lit(_) => Ok(self.clone()),
            Expr::Cmp(op, a, b) => Ok(Expr::Cmp(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            )),
            Expr::And(a, b) => Ok(Expr::And(
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            )),
            Expr::Or(a, b) => Ok(Expr::Or(
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            )),
            Expr::Not(a) => Ok(Expr::Not(Box::new(a.resolve(schema)?))),
            Expr::Neg(a) => Ok(Expr::Neg(Box::new(a.resolve(schema)?))),
            Expr::Arith(op, a, b) => Ok(Expr::Arith(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            )),
            Expr::Func(f, args) => Ok(Expr::Func(
                *f,
                args.iter()
                    .map(|a| a.resolve(schema))
                    .collect::<EngineResult<Vec<_>>>()?,
            )),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(Expr::Between {
                expr: Box::new(expr.resolve(schema)?),
                low: Box::new(low.resolve(schema)?),
                high: Box::new(high.resolve(schema)?),
                negated: *negated,
            }),
            Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(expr.resolve(schema)?),
                negated: *negated,
            }),
        }
    }
}

/// Resolve one (possibly qualified) column name against `schema`.
pub fn resolve_name(reference: &str, schema: &Schema) -> EngineResult<usize> {
    let (qualifier, base) = match reference.split_once('.') {
        Some((q, n)) => (Some(q), n),
        None => (None, reference),
    };
    // Collect every matching position ourselves (instead of re-parsing
    // `Schema::resolve`'s error text) so unknown vs. ambiguous is decided
    // structurally.
    let matches: Vec<usize> = schema
        .cols()
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            c.name == base
                && match qualifier {
                    None => true,
                    Some(q) => c.qualifier.as_deref() == Some(q),
                }
        })
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [i] => Ok(*i),
        [] => {
            let mut err = format!("unknown column '{reference}'");
            if let Some(best) = closest_column(reference, schema) {
                err.push_str(&format!(" — did you mean '{best}'?"));
            }
            Err(EngineError::UnknownColumn(err))
        }
        many => {
            let candidates: Vec<String> = many
                .iter()
                .map(|&i| schema.col(i).qualified_name())
                .collect();
            Err(EngineError::UnknownColumn(format!(
                "ambiguous column reference '{reference}' — qualify it as one of: {}",
                candidates.join(", ")
            )))
        }
    }
}

/// The closest existing column name (qualified or bare) by edit distance,
/// if any is close enough to plausibly be a typo.
fn closest_column(reference: &str, schema: &Schema) -> Option<String> {
    let lower = reference.to_ascii_lowercase();
    let mut best: Option<(usize, String)> = None;
    for c in schema.cols() {
        for cand in [c.qualified_name(), c.name.clone()] {
            let d = levenshtein(&lower, &cand.to_ascii_lowercase());
            if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, cand));
            }
        }
    }
    // A suggestion further than half the reference away is noise.
    best.filter(|(d, _)| *d <= (reference.len() / 2).max(2))
        .map(|(_, n)| n)
}

/// Classic two-row Levenshtein distance.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, name};
    use crate::schema::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("r", "person", DataType::Str),
            Column::qualified("r", "team", DataType::Str),
            Column::qualified("s", "team", DataType::Str),
            Column::new("ts", DataType::Int),
            Column::new("te", DataType::Int),
        ])
    }

    #[test]
    fn resolves_unqualified_unique_names() {
        let e = col("person").eq(lit("ann")).resolve(&schema()).unwrap();
        assert_eq!(e, col(0usize).eq(lit("ann")));
        assert!(!e.has_names());
    }

    #[test]
    fn resolves_qualified_names() {
        let e = name("r.team")
            .eq(name("s.team"))
            .resolve(&schema())
            .unwrap();
        assert_eq!(e, col(1usize).eq(col(2usize)));
    }

    #[test]
    fn ambiguous_name_lists_candidates() {
        let err = col("team").resolve(&schema()).unwrap_err().to_string();
        assert!(err.contains("ambiguous"), "{err}");
        assert!(err.contains("r.team") && err.contains("s.team"), "{err}");
    }

    #[test]
    fn unknown_name_suggests_closest() {
        let err = col("persn").resolve(&schema()).unwrap_err().to_string();
        assert!(err.contains("did you mean 'person'"), "{err}");
        let err = col("r.tem").resolve(&schema()).unwrap_err().to_string();
        assert!(err.contains("did you mean 'r.team'"), "{err}");
    }

    #[test]
    fn hopeless_name_gets_no_suggestion() {
        let err = col("zzzzzzzzzz")
            .resolve(&schema())
            .unwrap_err()
            .to_string();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn positional_references_pass_through() {
        let e = col(0usize).eq(lit(1i64));
        assert_eq!(e.resolve(&schema()).unwrap(), e);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("team", "team"), 0);
    }
}
