//! Sweep-based interval overlap join.
//!
//! Implements the paper's *future work* direction (Sec. 8: "investigate
//! indexing or merge sort techniques to improve the performance of the
//! temporal primitives for cases when conventional join techniques cannot
//! be evaluated efficiently"): when a join condition is an interval
//! overlap `l.ts < r.te ∧ r.ts < l.te` **without** useful equi keys, the
//! generic engine falls back to a quadratic nested loop. This operator
//! sorts both inputs by interval start and sweeps, touching only the
//! overlapping pairs plus bookkeeping — `O(n log n + m log m + matches)`
//! for well-behaved inputs.
//!
//! Disabled for the paper-faithful configuration
//! (`PlannerConfig::paper()`); the default planner auto-considers it when
//! it detects the overlap pattern, and the ablation bench measures the
//! improvement.
//!
//! The sweep is **incremental**: both inputs are materialized and sorted
//! (inherent to a sort-based sweep), but output is produced one left row
//! at a time, so working memory beyond the inputs stays proportional to
//! the active window — never to the (potentially quadratic) output.

use std::collections::VecDeque;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::{collect_rows, collect_rows_batched, BoxedExec, ExecNode, ExecutionState};
use crate::expr::{CompiledPred, Expr};
use crate::plan::JoinType;
use crate::schema::Schema;
use crate::tuple::Row;

/// One side of the sweep: materialized rows, their endpoints, and the
/// start-order permutation.
struct SweepSide {
    rows: Vec<Row>,
    /// `None` for rows with NULL (or non-int) endpoints — they never match.
    pts: Vec<Option<(i64, i64)>>,
    order: Vec<usize>,
}

impl SweepSide {
    fn new(rows: Vec<Row>, ts: usize, te: usize) -> SweepSide {
        let pts: Vec<Option<(i64, i64)>> = rows
            .iter()
            .map(|r| Some((r[ts].as_int()?, r[te].as_int()?)))
            .collect();
        // Sort indices by interval start (NULL-endpoint rows sort first
        // and are handled as never-matching).
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by_key(|&i| pts[i].map(|(s, _)| s));
        SweepSide { rows, pts, order }
    }
}

/// The sweep's mutable cursor state, built on first pull.
struct SweepState {
    l: SweepSide,
    r: SweepSide,
    /// Position in `l.order` of the next left row to process.
    next_l: usize,
    /// Position in `r.order` of the next right row to admit.
    next_r: usize,
    /// Active right candidates (their start precedes the current left
    /// end); pruned of intervals that ended before the current left
    /// start — valid because left starts are non-decreasing.
    active: Vec<usize>,
}

/// Interval overlap join (Inner or Left). Column indices address each
/// side's own row; the overlap condition is
/// `left[l_ts] < right[r_te] && right[r_ts] < left[l_te]`, with an
/// optional residual over the concatenated row.
pub struct IntervalJoinExec {
    left: BoxedExec,
    right: BoxedExec,
    l_ts: usize,
    l_te: usize,
    r_ts: usize,
    r_te: usize,
    residual: Option<Expr>,
    join_type: JoinType,
    schema: Schema,
    right_width: usize,
    state: Option<SweepState>,
    /// Matches of the left row currently being emitted (row path only);
    /// bounded by one left row's match count, not by the whole output.
    pending: VecDeque<Row>,
}

impl IntervalJoinExec {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: BoxedExec,
        right: BoxedExec,
        l_ts: usize,
        l_te: usize,
        r_ts: usize,
        r_te: usize,
        residual: Option<Expr>,
        join_type: JoinType,
    ) -> Self {
        assert!(
            matches!(join_type, JoinType::Inner | JoinType::Left),
            "interval join supports Inner/Left, got {join_type:?}"
        );
        let right_width = right.schema().len();
        let schema = left.schema().concat(right.schema());
        IntervalJoinExec {
            left,
            right,
            l_ts,
            l_te,
            r_ts,
            r_te,
            residual,
            join_type,
            schema,
            right_width,
            state: None,
            pending: VecDeque::new(),
        }
    }

    /// Materialize and sort both sides (once), via the protocol the caller
    /// is driving.
    fn ensure_state(&mut self, state: &ExecutionState, batched: bool) -> EngineResult<()> {
        if self.state.is_some() {
            return Ok(());
        }
        let (l_rows, r_rows) = if batched {
            (
                collect_rows_batched(self.left.as_mut(), state)?,
                collect_rows_batched(self.right.as_mut(), state)?,
            )
        } else {
            (
                collect_rows(self.left.as_mut(), state)?,
                collect_rows(self.right.as_mut(), state)?,
            )
        };
        self.state = Some(SweepState {
            l: SweepSide::new(l_rows, self.l_ts, self.l_te),
            r: SweepSide::new(r_rows, self.r_ts, self.r_te),
            next_l: 0,
            next_r: 0,
            active: Vec::new(),
        });
        Ok(())
    }

    /// Advance the sweep over **one** left row, appending its join output
    /// to `out`. Returns `false` when the left side is exhausted.
    /// `batch_pred` selects the protocol: `None` is the row path
    /// (per-candidate `eval_pred` over the combined row); `Some(pred)` is
    /// the batch path, where `pred` is the residual pre-compiled by the
    /// caller (once per batch) and evaluated over the row *pair*, with the
    /// combined row materialized only for passing candidates, or `None`
    /// inside for non-compilable residuals (vectorized fallback).
    fn sweep_one_left(
        &mut self,
        out: &mut Vec<Row>,
        batch_pred: Option<Option<&CompiledPred>>,
    ) -> EngineResult<bool> {
        let st = self.state.as_mut().expect("state built");
        if st.next_l >= st.l.order.len() {
            return Ok(false);
        }
        let li = st.l.order[st.next_l];
        st.next_l += 1;
        let Some((lts, lte)) = st.l.pts[li] else {
            if self.join_type == JoinType::Left {
                out.push(st.l.rows[li].concat_nulls(self.right_width));
            }
            return Ok(true);
        };
        // Admit right rows starting before this left interval ends.
        while st.next_r < st.r.order.len() {
            let j = st.r.order[st.next_r];
            match st.r.pts[j] {
                Some((rts, _)) if rts < lte => {
                    st.active.push(j);
                    st.next_r += 1;
                }
                Some(_) => break,
                None => {
                    st.next_r += 1; // NULL endpoints never match
                }
            }
        }
        // Drop candidates that ended at or before this left start —
        // they can never match later lefts either (starts ascend).
        let r_pts = &st.r.pts;
        st.active.retain(|&j| r_pts[j].expect("admitted").1 > lts);

        let left_width = self.schema.len() - self.right_width;
        let mut matched = false;
        match (&self.residual, batch_pred) {
            (None, _) => {
                for &j in &st.active {
                    let (rts, rte) = st.r.pts[j].expect("admitted");
                    // `rte > lts` holds by the retain; re-check the start
                    // side because left ends are not monotonic.
                    if rts < lte && rte > lts {
                        matched = true;
                        out.push(st.l.rows[li].concat(&st.r.rows[j]));
                    }
                }
            }
            (Some(_), Some(Some(pred))) => {
                for &j in &st.active {
                    let (rts, rte) = st.r.pts[j].expect("admitted");
                    if rts < lte
                        && rte > lts
                        && pred.matches_pair(
                            st.l.rows[li].values(),
                            st.r.rows[j].values(),
                            left_width,
                        )?
                    {
                        matched = true;
                        out.push(st.l.rows[li].concat(&st.r.rows[j]));
                    }
                }
            }
            (Some(e), Some(None)) => {
                let mut cands: Vec<Row> = Vec::new();
                for &j in &st.active {
                    let (rts, rte) = st.r.pts[j].expect("admitted");
                    if rts < lte && rte > lts {
                        cands.push(st.l.rows[li].concat(&st.r.rows[j]));
                    }
                }
                let pass = e.eval_pred_batch(&cands)?;
                for (c, p) in cands.into_iter().zip(pass) {
                    if p {
                        matched = true;
                        out.push(c);
                    }
                }
            }
            (Some(e), None) => {
                for &j in &st.active {
                    let (rts, rte) = st.r.pts[j].expect("admitted");
                    if rts < lte && rte > lts {
                        let combined = st.l.rows[li].concat(&st.r.rows[j]);
                        if e.eval_pred(combined.values())? {
                            matched = true;
                            out.push(combined);
                        }
                    }
                }
            }
        }
        if !matched && self.join_type == JoinType::Left {
            out.push(st.l.rows[li].concat_nulls(self.right_width));
        }
        Ok(true)
    }
}

impl ExecNode for IntervalJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            self.ensure_state(state, false)?;
            let mut buf = Vec::new();
            if !self.sweep_one_left(&mut buf, None)? {
                return Ok(None);
            }
            self.pending.extend(buf);
        }
    }

    /// Batch path: streaming batched sweep — advance over left rows until a
    /// batch worth of output has accumulated. The residual is compiled once
    /// per call (from a clone of the expression, so the borrow doesn't pin
    /// `self`), not once per left row.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        self.ensure_state(state, true)?;
        let residual = self.residual.clone();
        let compiled = residual.as_ref().and_then(CompiledPred::compile);
        let mut out: Vec<Row> = self.pending.drain(..).collect();
        while out.len() < BATCH_SIZE {
            if !self.sweep_one_left(&mut out, Some(compiled.as_ref()))? {
                break;
            }
        }
        if out.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::new(self.schema.clone(), out)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, ExecutionState, NestedLoopJoinExec, SeqScanExec};
    use crate::expr::col;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn rel(rows: &[(i64, i64, i64)]) -> Relation {
        Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("ts", DataType::Int),
                Column::new("te", DataType::Int),
            ]),
            rows.iter()
                .map(|&(k, s, e)| vec![Value::Int(k), Value::Int(s), Value::Int(e)])
                .collect(),
        )
        .unwrap()
    }

    fn scan(r: &Relation) -> BoxedExec {
        Box::new(SeqScanExec::new(r.clone().into_shared()))
    }

    fn run_sweep(l: &Relation, r: &Relation, jt: JoinType, residual: Option<Expr>) -> Relation {
        let node = IntervalJoinExec::new(scan(l), scan(r), 1, 2, 1, 2, residual, jt);
        collect(Box::new(node), &ExecutionState::default()).unwrap()
    }

    fn run_nl(l: &Relation, r: &Relation, jt: JoinType, residual: Option<Expr>) -> Relation {
        let overlap = col(1).lt(col(5)).and(col(4).lt(col(2)));
        let cond = match residual {
            Some(res) => overlap.and(res),
            None => overlap,
        };
        let node = NestedLoopJoinExec::new(scan(l), scan(r), jt, Some(cond));
        collect(Box::new(node), &ExecutionState::default()).unwrap()
    }

    #[test]
    fn agrees_with_nested_loop() {
        let l = rel(&[(1, 0, 5), (2, 3, 9), (3, 10, 12), (4, 1, 2)]);
        let r = rel(&[(7, 4, 6), (8, 0, 1), (9, 11, 15), (10, 2, 3)]);
        for jt in [JoinType::Inner, JoinType::Left] {
            let sweep = run_sweep(&l, &r, jt, None);
            let nl = run_nl(&l, &r, jt, None);
            assert!(sweep.same_bag(&nl), "{jt:?}:\n{sweep}\nvs\n{nl}");
        }
    }

    #[test]
    fn agrees_with_nested_loop_with_residual() {
        let l = rel(&[(1, 0, 5), (2, 3, 9), (1, 6, 8)]);
        let r = rel(&[(1, 4, 6), (2, 0, 10), (3, 5, 7)]);
        let residual = Some(col(0).eq(col(3))); // k = k
        for jt in [JoinType::Inner, JoinType::Left] {
            let sweep = run_sweep(&l, &r, jt, residual.clone());
            let nl = run_nl(&l, &r, jt, residual.clone());
            assert!(sweep.same_bag(&nl), "{jt:?}");
        }
    }

    #[test]
    fn randomized_agreement() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let mk = |rng: &mut StdRng| {
                let rows: Vec<(i64, i64, i64)> = (0..rng.gen_range(0..15))
                    .map(|i| {
                        let s = rng.gen_range(0..30);
                        (i, s, s + rng.gen_range(1..10))
                    })
                    .collect();
                rel(&rows)
            };
            let l = mk(&mut rng);
            let r = mk(&mut rng);
            for jt in [JoinType::Inner, JoinType::Left] {
                let sweep = run_sweep(&l, &r, jt, None);
                let nl = run_nl(&l, &r, jt, None);
                assert!(sweep.same_bag(&nl), "{jt:?}:\n{sweep}\nvs\n{nl}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let l = rel(&[(1, 0, 5)]);
        let e = rel(&[]);
        assert_eq!(run_sweep(&l, &e, JoinType::Left, None).len(), 1);
        assert_eq!(run_sweep(&e, &l, JoinType::Left, None).len(), 0);
        assert_eq!(run_sweep(&l, &e, JoinType::Inner, None).len(), 0);
    }

    #[test]
    fn batch_path_is_row_for_row_identical() {
        use crate::exec::collect_rowwise;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let mk = |rng: &mut StdRng| {
                let rows: Vec<(i64, i64, i64)> = (0..rng.gen_range(0..25))
                    .map(|i| {
                        let s = rng.gen_range(0..40);
                        (i % 4, s, s + rng.gen_range(1..12))
                    })
                    .collect();
                rel(&rows)
            };
            let l = mk(&mut rng);
            let r = mk(&mut rng);
            for jt in [JoinType::Inner, JoinType::Left] {
                for residual in [None, Some(col(0).eq(col(3)))] {
                    let mk_node = |res: Option<Expr>| {
                        Box::new(IntervalJoinExec::new(
                            scan(&l),
                            scan(&r),
                            1,
                            2,
                            1,
                            2,
                            res,
                            jt,
                        ))
                    };
                    let rows =
                        collect_rowwise(mk_node(residual.clone()), &ExecutionState::default())
                            .unwrap();
                    let batches = collect(mk_node(residual), &ExecutionState::default()).unwrap();
                    assert_eq!(rows.rows(), batches.rows(), "{jt:?}");
                }
            }
        }
    }

    #[test]
    fn row_path_is_incremental() {
        // The first next() call must not materialize the whole output:
        // emitting a row leaves later matches unproduced in `pending` —
        // bounded by one left row's matches, not the full cross product.
        let l = rel(&[(1, 0, 10), (2, 0, 10), (3, 0, 10)]);
        let r = rel(&[(7, 0, 10), (8, 0, 10), (9, 0, 10)]);
        let mut node = IntervalJoinExec::new(scan(&l), scan(&r), 1, 2, 1, 2, None, JoinType::Inner);
        assert!(node.next(&ExecutionState::default()).unwrap().is_some());
        // 9 matches total; after one next() only the current left row's
        // remaining matches (2 of its 3) are buffered.
        assert_eq!(node.pending.len(), 2);
        let mut remaining = 0;
        while node.next(&ExecutionState::default()).unwrap().is_some() {
            remaining += 1;
        }
        assert_eq!(remaining, 8);
    }

    #[test]
    fn null_endpoints_never_match_but_pad_in_left() {
        let l = Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("ts", DataType::Int),
                Column::new("te", DataType::Int),
            ]),
            vec![vec![Value::Int(1), Value::Null, Value::Int(5)]],
        )
        .unwrap();
        let r = rel(&[(9, 0, 10)]);
        let out = run_sweep(&l, &r, JoinType::Left, None);
        assert_eq!(out.len(), 1);
        assert!(out.rows()[0][3].is_null());
    }
}
