//! Batch/row differential tests (ISSUE 3): the vectorized batch protocol
//! (`ExecNode::next_batch` / `PhysicalPlan::collect`) must be **row-for-row
//! identical** — same rows, same order — to the row-at-a-time Volcano
//! protocol (`ExecNode::next` / `PhysicalPlan::collect_rowwise`) on every
//! operator: filter, project, the join algorithms (hash, nested-loop,
//! interval sweep), set operations, and both temporal adjustment modes
//! (alignment and normalization) plus the gaps-only anti-join sweep and
//! absorb. Plus batch-boundary edge cases: empty inputs, batches emptied
//! by a filter, inputs of exactly `BATCH_SIZE` rows, and sweep groups
//! spanning batch boundaries.

mod common;

use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::semantics::TemporalOp;
use temporal_alignment::engine::catalog::Catalog;
use temporal_alignment::engine::prelude::*;
use temporal_datasets::{ddisj, deq, drand};

/// Plan once, execute through both protocols, compare row-for-row.
fn assert_paths_identical_logical(lp: &LogicalPlan, planner: &Planner, label: &str) {
    let physical = planner
        .plan(lp, &Catalog::new())
        .unwrap_or_else(|e| panic!("{label}: plan: {e}"));
    let row_path = physical
        .collect_rowwise(&ExecutionState::default())
        .unwrap_or_else(|e| panic!("{label}: row path: {e}"));
    let batch_path = physical
        .collect(&ExecutionState::default())
        .unwrap_or_else(|e| panic!("{label}: batch path: {e}"));
    assert_eq!(
        row_path.rows(),
        batch_path.rows(),
        "{label}: batch path diverges from row path"
    );
}

fn assert_paths_identical(plan: &TemporalPlan, planner: &Planner, label: &str) {
    assert_paths_identical_logical(plan.logical(), planner, label);
}

/// Apply one operator to a composed plan (as in `tests/plan_first.rs`).
fn apply_plan(
    op: &TemporalOp,
    plan: TemporalPlan,
    rhs: Option<TemporalPlan>,
) -> TemporalResult<TemporalPlan> {
    match op {
        TemporalOp::Selection { predicate } => plan.selection(predicate.clone()),
        TemporalOp::Projection { attrs } => plan.projection(attrs),
        TemporalOp::Aggregation { group, aggs } => plan.aggregation(group, aggs.clone()),
        TemporalOp::Union => plan.union(rhs.expect("binary")),
        TemporalOp::Difference => plan.difference(rhs.expect("binary")),
        TemporalOp::Intersection => plan.intersection(rhs.expect("binary")),
        TemporalOp::CartesianProduct => plan.cartesian_product(rhs.expect("binary")),
        TemporalOp::Join { theta } => plan.join(rhs.expect("binary"), theta.clone()),
        TemporalOp::LeftOuterJoin { theta } => {
            plan.left_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::RightOuterJoin { theta } => {
            plan.right_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::FullOuterJoin { theta } => {
            plan.full_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::AntiJoin { theta } => plan.anti_join(rhs.expect("binary"), theta.clone()),
    }
}

/// Chains over two one-data-column relations covering filter, project,
/// aggregation, every join family and every set operation — and, through
/// the reductions, both adjustment modes (joins align, group-based
/// operators and set ops normalize) plus absorb.
fn chains_1col() -> Vec<Vec<TemporalOp>> {
    let count = vec![(AggCall::count_star(), "cnt".to_string())];
    vec![
        vec![
            TemporalOp::Join {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Selection {
                predicate: col(0).ge(lit(1i64)),
            },
            TemporalOp::Projection { attrs: vec![0] },
        ],
        // θ = None: the group-construction join is a pure overlap join, so
        // the default planner's heuristic picks the interval sweep join —
        // this chain differentially tests IntervalJoinExec's batch path.
        vec![
            TemporalOp::LeftOuterJoin { theta: None },
            TemporalOp::Aggregation {
                group: vec![0],
                aggs: count.clone(),
            },
        ],
        vec![
            TemporalOp::FullOuterJoin {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Projection { attrs: vec![0, 1] },
        ],
        vec![
            TemporalOp::AntiJoin {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Selection {
                predicate: col(0).ge(lit(0i64)),
            },
        ],
        vec![
            TemporalOp::Union,
            TemporalOp::Selection {
                predicate: col(0).lt(lit(4i64)),
            },
        ],
        vec![
            TemporalOp::Difference,
            TemporalOp::Projection { attrs: vec![0] },
        ],
        vec![
            TemporalOp::Intersection,
            TemporalOp::Aggregation {
                group: vec![],
                aggs: count,
            },
        ],
    ]
}

fn check_chains(r: &TemporalRelation, s: &TemporalRelation, label: &str) {
    let planner = Planner::default();
    for (i, chain) in chains_1col().iter().enumerate() {
        let mut plan = apply_plan(
            &chain[0],
            TemporalPlan::scan(r),
            Some(TemporalPlan::scan(s)),
        )
        .unwrap_or_else(|e| panic!("{label} chain {i}: compose: {e}"));
        for op in &chain[1..] {
            plan = apply_plan(op, plan, None)
                .unwrap_or_else(|e| panic!("{label} chain {i}: compose: {e}"));
        }
        assert_paths_identical(&plan, &planner, &format!("{label} chain {i}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pipelines over the paper's synthetic datasets: batch ≡ row on Ddisj
    /// and Deq of random sizes.
    #[test]
    fn batch_equals_row_on_ddisj_and_deq(n in 2usize..7) {
        let (r, s) = ddisj(n);
        check_chains(&r, &s, &format!("ddisj({n})"));
        let (r, s) = deq(n);
        check_chains(&r, &s, &format!("deq({n})"));
    }

    /// Pipelines on Drand (random intervals, asymmetric schemas).
    #[test]
    fn batch_equals_row_on_drand(n in 2usize..7, seed in 0u64..1000) {
        let (r, s) = drand(n, seed);
        let planner = Planner::default();
        // concat row = (id, ts, te, a, min, max, ts, te)
        let chains: Vec<Vec<TemporalOp>> = vec![
            vec![
                TemporalOp::Join { theta: Some(col(0).lt(col(3))) },
                TemporalOp::Projection { attrs: vec![0] },
            ],
            vec![
                TemporalOp::LeftOuterJoin { theta: Some(col(0).lt(col(3))) },
                TemporalOp::Selection { predicate: col(1).ge(lit(0i64)) },
                TemporalOp::Projection { attrs: vec![0, 1] },
            ],
            vec![
                TemporalOp::AntiJoin { theta: Some(col(0).eq(col(3))) },
                TemporalOp::Aggregation {
                    group: vec![0],
                    aggs: vec![(AggCall::count_star(), "cnt".to_string())],
                },
            ],
        ];
        for (i, chain) in chains.iter().enumerate() {
            let mut plan = apply_plan(
                &chain[0],
                TemporalPlan::scan(&r),
                Some(TemporalPlan::scan(&s)),
            ).unwrap_or_else(|e| panic!("drand chain {i}: compose: {e}"));
            for op in &chain[1..] {
                plan = apply_plan(op, plan, None)
                    .unwrap_or_else(|e| panic!("drand chain {i}: compose: {e}"));
            }
            assert_paths_identical(&plan, &planner, &format!("drand({n},{seed}) chain {i}"));
        }
    }

    /// The raw primitives: alignment, normalization and the gaps-only
    /// anti-join sweep — both adjustment modes, batch ≡ row.
    #[test]
    fn batch_equals_row_on_raw_primitives(seed in 0u64..500) {
        let r = common::random_trel(seed, 14, 4, 30);
        let s = common::random_trel(seed + 10_000, 14, 4, 30);
        let planner = Planner::default();
        let theta = col(0).eq(col(3));

        let align = TemporalPlan::scan(&r)
            .align(TemporalPlan::scan(&s), Some(theta.clone()))
            .unwrap();
        assert_paths_identical(&align, &planner, &format!("align seed {seed}"));

        let normalize = TemporalPlan::scan(&r)
            .normalize(TemporalPlan::scan(&s), &[(0, 0)])
            .unwrap();
        assert_paths_identical(&normalize, &planner, &format!("normalize seed {seed}"));

        let gaps = TemporalPlan::scan(&r)
            .anti_join_optimized(TemporalPlan::scan(&s), Some(theta))
            .unwrap();
        assert_paths_identical(&gaps, &planner, &format!("gaps-only seed {seed}"));

        let absorb = TemporalPlan::scan(&r).absorb();
        assert_paths_identical(&absorb, &planner, &format!("absorb seed {seed}"));
    }
}

// ---- batch-boundary edge cases ---------------------------------------

/// A sweep group larger than `BATCH_SIZE`: one r tuple split at ~1.5·1024
/// interior points, so the adjustment's sorted group spans several input
/// batches — and the output spans several output batches.
#[test]
fn sweep_group_spanning_batches() {
    let k = BATCH_SIZE as i64 + 512;
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("k", DataType::Int)]),
        vec![(vec![Value::Int(0)], Interval::of(0, 2 * k + 2))],
    )
    .unwrap();
    // Disjoint unit intervals strictly inside r's interval: every endpoint
    // is a split point.
    let s = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("k", DataType::Int)]),
        (0..k)
            .map(|i| (vec![Value::Int(i)], Interval::of(2 * i + 1, 2 * i + 2)))
            .collect(),
    )
    .unwrap();
    let planner = Planner::default();
    let normalize = TemporalPlan::scan(&r)
        .normalize(TemporalPlan::scan(&s), &[])
        .unwrap();
    assert_paths_identical(&normalize, &planner, "giant normalize group");
    let align = TemporalPlan::scan(&r)
        .align(TemporalPlan::scan(&s), None)
        .unwrap();
    assert_paths_identical(&align, &planner, "giant align group");
}

/// An absorb group larger than `BATCH_SIZE` (nested same-value intervals):
/// group state must carry across input batches.
#[test]
fn absorb_group_spanning_batches() {
    let k = BATCH_SIZE as i64 + 300;
    let schema = Schema::new(vec![
        Column::new("v", DataType::Int),
        Column::new("ts", DataType::Int),
        Column::new("te", DataType::Int),
    ]);
    // (0, [i, 2k - i)) for i in 0..k — all absorbed into (0, [0, 2k)).
    let rel = Relation::from_values(
        schema,
        (0..k)
            .map(|i| vec![Value::Int(0), Value::Int(i), Value::Int(2 * k - i)])
            .collect(),
    )
    .unwrap();
    let lp = temporal_alignment::core::primitives::absorb::AbsorbNode::plan(
        LogicalPlan::inline_scan(rel),
    );
    assert_paths_identical_logical(&lp, &Planner::default(), "giant absorb group");
}

/// Inputs of exactly `BATCH_SIZE` rows: one full batch, then `None` — and
/// empty inputs: `None` immediately, never an empty batch.
#[test]
fn exact_batch_size_and_empty_inputs() {
    let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
    let exact = Relation::from_values(
        schema.clone(),
        (0..BATCH_SIZE as i64)
            .map(|i| vec![Value::Int(i)])
            .collect(),
    )
    .unwrap();
    let state = ExecutionState::default();
    let mut scan = temporal_alignment::engine::exec::SeqScanExec::new(exact.into_shared());
    let first = scan.next_batch(&state).unwrap().expect("one full batch");
    assert_eq!(first.len(), BATCH_SIZE);
    assert!(scan.next_batch(&state).unwrap().is_none());

    let empty = Relation::empty(schema.clone());
    let mut scan = temporal_alignment::engine::exec::SeqScanExec::new(empty.into_shared());
    assert!(scan.next_batch(&state).unwrap().is_none());
    assert!(scan.next_batch(&state).unwrap().is_none());
}

/// A filter that empties whole input batches must skip them (batches are
/// never empty) and still terminate.
#[test]
fn filter_skips_emptied_batches() {
    let n = 3 * BATCH_SIZE as i64;
    let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
    let rel = Relation::from_values(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    // Keep only a sliver from the middle batch.
    let lo = BATCH_SIZE as i64 + 10;
    let hi = lo + 5;
    let lp =
        LogicalPlan::inline_scan(rel.clone()).filter(col(0).ge(lit(lo)).and(col(0).lt(lit(hi))));
    assert_paths_identical_logical(&lp, &Planner::default(), "middle sliver filter");
    // Keep nothing at all.
    let lp = LogicalPlan::inline_scan(rel).filter(col(0).lt(lit(0i64)));
    let physical = Planner::default().plan(&lp, &Catalog::new()).unwrap();
    let state = ExecutionState::default();
    let mut exec = physical.execute(&state).unwrap();
    assert!(exec.next_batch(&state).unwrap().is_none());
}
