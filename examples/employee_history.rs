//! An Incumben-style workload: job assignments of employees over time
//! (the kind of data the paper's evaluation uses).
//!
//! Demonstrates the group-based operators on a generated dataset through
//! the name-based frame API: temporal aggregation (staffing level over
//! time), temporal difference (periods where a position was held by
//! someone else), temporal projection, and the anti join (employment
//! gaps) as an aliased self-join.
//!
//! Run with: `cargo run --example employee_history`

use temporal_alignment::datasets::{incumben, prefix, IncumbenSpec};
use temporal_alignment::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small deterministic slice of the Incumben substitute.
    let spec = IncumbenSpec {
        rows: 600,
        employees: 350,
        positions: 40,
        ..Default::default()
    };
    let data = incumben(spec);
    let sample = prefix(&data, 8);
    println!("incumben sample (ssn, pcn, [ts, te) in days):\n{sample}");

    let db = Database::new();
    db.register("assignments", &data)?;

    // 1. Staffing level over time: how many assignments are active?
    let staffing = db
        .table("assignments")?
        .aggregate(&[], vec![(AggCall::count_star(), "active")])
        .collect()?;
    let peak = staffing
        .iter()
        .map(|(d, _)| d[0].as_int().unwrap())
        .max()
        .unwrap_or(0);
    println!(
        "staffing level: {} change-preserving fragments, peak concurrent assignments = {peak}",
        staffing.len()
    );

    // 2. Per-position occupancy: distinct (pcn, T) spans where the
    //    position is staffed — a temporal projection onto pcn.
    let occupancy = db.table("assignments")?.select(&["pcn"]).collect()?;
    println!(
        "per-position occupancy fragments: {} (from {} assignments)",
        occupancy.len(),
        data.len()
    );

    // 3. Employee 0's assignment history.
    let emp0 = db
        .table("assignments")?
        .filter(col("ssn").eq(lit(0i64)))
        .collect()?;
    println!("employee 0 history:\n{emp0}");

    // 4. Temporal difference: spans where position 0 was staffed but NOT
    //    by employee 0.
    let pos0 = db
        .table("assignments")?
        .filter(col("pcn").eq(lit(0i64)))
        .select(&["pcn"]);
    let pos0_by_emp0 = db
        .table("assignments")?
        .filter(col("pcn").eq(lit(0i64)).and(col("ssn").eq(lit(0i64))))
        .select(&["pcn"]);
    let pos0_by_others = pos0.difference(pos0_by_emp0).collect()?;
    println!(
        "position 0 staffed-by-others fragments: {}",
        pos0_by_others.len()
    );

    // 5. Anti join: assignments during which the employee's position had
    //    no *other* overlapping assignment (sole incumbency) — an aliased
    //    self-join: same position, different employee.
    let mine = db.table("assignments")?.alias("mine");
    let theirs = db.table("assignments")?.alias("theirs");
    let sole = mine
        .anti_join(
            theirs,
            col("mine.pcn")
                .eq(col("theirs.pcn"))
                .and(col("mine.ssn").ne(col("theirs.ssn"))),
        )
        .collect()?;
    println!(
        "sole-incumbency fragments: {} (from {} assignments)",
        sole.len(),
        data.len()
    );

    // Sanity: every result is a valid duplicate-free temporal relation.
    for (name, rel) in [
        ("staffing", &staffing),
        ("occupancy", &occupancy),
        ("pos0_by_others", &pos0_by_others),
    ] {
        assert!(rel.is_duplicate_free(), "{name} has duplicates");
    }
    println!("all results are duplicate-free temporal relations ✓");

    Ok(())
}
