//! Multi-operator chain: `ϑᵀ_{pcn; COUNT} ∘ σᵀ_{ssn < cap} ∘ ⋈ᵀ_{pcn}` on
//! Incumben — the plan-first composition benchmark.
//!
//! `eager` evaluates the chain one operator at a time, materializing a
//! temporal relation between stages (N× `Planner::run`). `plan-first`
//! compiles the whole chain into one `TemporalPlan` and executes it with a
//! single `Planner::run` draining the executor batch-wise; the planner's
//! rewrite pass pushes the selection across the alignment extension nodes
//! into the base scans, so the join aligns only the surviving tuples.
//! `plan-first-rows` drains the same compiled plan row-at-a-time (the
//! pre-batch executor path), isolating the vectorization win, and
//! `plan-first-norw` disables the rewrites to separate barrier removal
//! from cross-operator optimization.
//!
//! Plans are rebuilt inside the timed closure: a composed plan carries
//! spool caches for its shared subtrees, and reusing one plan across
//! iterations would let later iterations read the first iteration's cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temporal_bench::{run_chain, ChainMode};
use temporal_datasets::{incumben, prefix, IncumbenSpec};
use temporal_engine::prelude::*;

fn bench(c: &mut Criterion) {
    let data = incumben(IncumbenSpec::default());
    // Pinned to the paper-faithful planner for comparability with the
    // reproduce binary's chain sweep (the chain's joins carry equi keys,
    // so the interval-join heuristic is a no-op here either way).
    let planner = Planner::new(PlannerConfig::paper());
    let mut group = c.benchmark_group("chain_pipeline");
    group.sample_size(10);
    for &n in &[250usize, 500, 1_000] {
        let r = prefix(&data, n);
        // A prefix of n rows introduces ssns 0..n, so this keeps ~10% of
        // the employees — selective enough that pushdown pays.
        let cap = (n / 10) as i64;
        for mode in [
            ChainMode::Eager,
            ChainMode::PlanFirstRows,
            ChainMode::PlanFirst,
            ChainMode::PlanFirstNoRewrites,
        ] {
            group.bench_with_input(BenchmarkId::new(mode.label(), n), &r, |b, r| {
                b.iter(|| run_chain(mode, r, r, cap, &planner))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
