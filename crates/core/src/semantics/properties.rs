//! Table 1 of the paper: which operators are *schema robust* (Def. 2) and
//! which are *timestamp propagating* (Def. 5) — with executable evidence.
//!
//! Schema robustness is what makes timestamp propagation sound: an
//! operator unaffected by extra attributes can safely receive relations
//! extended with propagated timestamps. The set operators are **not**
//! schema robust — independently extended arguments stop being
//! union-compatible in spirit (value equivalence now involves the foreign
//! attributes), so propagated timestamps must be projected away before
//! ∪/−/∩ (Sec. 3.3).

use temporal_engine::prelude::*;

use crate::algebra::TemporalAlgebra;
use crate::error::TemporalResult;
use crate::semantics::op::TemporalOp;
use crate::trel::TemporalRelation;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorProperties {
    pub operator: &'static str,
    pub schema_robust: bool,
    pub timestamp_propagating: bool,
}

/// The paper's Table 1.
pub fn table1() -> Vec<OperatorProperties> {
    let row = |operator, schema_robust, timestamp_propagating| OperatorProperties {
        operator,
        schema_robust,
        timestamp_propagating,
    };
    vec![
        row("σ", true, true),
        row("×", true, true),
        row("⋈", true, true),
        row("⟕", true, true),
        row("⟖", true, true),
        row("⟗", true, true),
        row("▷", true, true),
        row("π", true, false),
        row("ϑ", true, false),
        row("−", false, false),
        row("∩", false, false),
        row("∪", false, false),
    ]
}

/// Render Table 1 as text (used by the `reproduce` harness).
pub fn render_table1() -> String {
    let mut out = String::from(
        "Table 1: Properties of Operators\n\
         operator   schema robust   timestamp propagating\n",
    );
    for p in table1() {
        out.push_str(&format!(
            "{:<10} {:<15} {}\n",
            p.operator,
            if p.schema_robust { "yes" } else { "no" },
            if p.timestamp_propagating { "yes" } else { "no" },
        ));
    }
    out
}

/// Extend `r` with an extra Int data column `name` holding unique values
/// `base + row index` — an adversarial witness for Def. 2 ("for all Xi").
pub fn extend_with_tag(
    r: &TemporalRelation,
    name: &str,
    base: i64,
) -> TemporalResult<TemporalRelation> {
    let dw = r.data_width();
    let mut cols = r.data_schema().cols().to_vec();
    cols.push(Column::new(name, DataType::Int));
    let schema = Schema::new(cols);
    let rows = r
        .iter()
        .enumerate()
        .map(|(i, (data, iv))| {
            let mut vals = data.to_vec();
            vals.push(Value::Int(base + i as i64));
            debug_assert_eq!(vals.len(), dw + 1);
            (vals, iv)
        })
        .collect();
    TemporalRelation::from_rows(schema, rows)
}

/// Remap a θ (over plain `r ++ s` full rows) to extended coordinates where
/// both arguments gained one data column before ts/te.
fn remap_theta(theta: &Expr, dr: usize, ds: usize) -> Expr {
    theta.remap_cols(&|i| {
        if i < dr {
            i // r data
        } else if i < dr + 2 + ds {
            i + 1 // r ts/te and s data shift past r's tag column
        } else {
            i + 2 // s ts/te shift past both tag columns
        }
    })
}

/// Rebuild `op` with θ/predicates remapped for tag-extended arguments.
fn remap_op(op: &TemporalOp, dr: usize, ds: usize) -> TemporalOp {
    let remap = |t: &Option<Expr>| t.as_ref().map(|e| remap_theta(e, dr, ds));
    match op {
        TemporalOp::Selection { predicate } => TemporalOp::Selection {
            // Unary: only r's ts/te shift.
            predicate: predicate.remap_cols(&|i| if i < dr { i } else { i + 1 }),
        },
        TemporalOp::Projection { attrs } => TemporalOp::Projection {
            attrs: attrs.clone(),
        },
        TemporalOp::Aggregation { group, aggs } => TemporalOp::Aggregation {
            group: group.clone(),
            aggs: aggs
                .iter()
                .map(|(c, n)| {
                    let call = AggCall {
                        func: c.func,
                        arg: c
                            .arg
                            .as_ref()
                            .map(|e| e.remap_cols(&|i| if i < dr { i } else { i + 1 })),
                    };
                    (call, n.clone())
                })
                .collect(),
        },
        TemporalOp::Union => TemporalOp::Union,
        TemporalOp::Difference => TemporalOp::Difference,
        TemporalOp::Intersection => TemporalOp::Intersection,
        TemporalOp::CartesianProduct => TemporalOp::CartesianProduct,
        TemporalOp::Join { theta } => TemporalOp::Join {
            theta: remap(theta),
        },
        TemporalOp::LeftOuterJoin { theta } => TemporalOp::LeftOuterJoin {
            theta: remap(theta),
        },
        TemporalOp::RightOuterJoin { theta } => TemporalOp::RightOuterJoin {
            theta: remap(theta),
        },
        TemporalOp::FullOuterJoin { theta } => TemporalOp::FullOuterJoin {
            theta: remap(theta),
        },
        TemporalOp::AntiJoin { theta } => TemporalOp::AntiJoin {
            theta: remap(theta),
        },
    }
}

/// Def. 2 on concrete arguments: does
/// `π_E(ψ(extended args)) ≡ ψ(args)` hold for adversarial tag columns?
pub fn check_schema_robust(
    op: &TemporalOp,
    args: &[&TemporalRelation],
    alg: &TemporalAlgebra,
) -> TemporalResult<bool> {
    let plain = op.evaluate(alg, args)?;
    let extended: Vec<TemporalRelation> = args
        .iter()
        .enumerate()
        .map(|(i, r)| extend_with_tag(r, &format!("__x{i}"), 1000 * (i as i64 + 1)))
        .collect::<TemporalResult<Vec<_>>>()?;
    let ext_refs: Vec<&TemporalRelation> = extended.iter().collect();
    let dr = args[0].data_width();
    let ds = args.get(1).map_or(0, |s| s.data_width());
    let ext_op = remap_op(op, dr, ds);
    let ext_result = match ext_op.evaluate(alg, &ext_refs) {
        Ok(r) => r,
        // Evaluation failures on extended arguments (e.g. broken union
        // compatibility) are themselves evidence of non-robustness.
        Err(_) => return Ok(false),
    };
    // π_E: drop the tag columns from the extended result.
    let data_schema = ext_result.data_schema();
    let keep: Vec<usize> = (0..ext_result.data_width())
        .filter(|&i| !data_schema.col(i).name.starts_with("__x"))
        .collect();
    let projected = ext_result.project_data(&keep)?;
    Ok(projected.same_set(&plain))
}

/// Def. 5 on concrete arguments: do the tag columns survive into the
/// result schema (with the operator otherwise unchanged)?
///
/// Nuance for the anti join: its output schema is `r`'s schema, so only
/// the left argument's propagated attributes can flow *through* it — the
/// right argument's propagated timestamps are consumed by θ inside the
/// operator. Table 1 still lists ▷ as timestamp propagating, and we check
/// propagation only for output-contributing arguments.
pub fn check_timestamp_propagating(
    op: &TemporalOp,
    args: &[&TemporalRelation],
    alg: &TemporalAlgebra,
) -> TemporalResult<bool> {
    let extended: Vec<TemporalRelation> = args
        .iter()
        .enumerate()
        .map(|(i, r)| extend_with_tag(r, &format!("__x{i}"), 1000 * (i as i64 + 1)))
        .collect::<TemporalResult<Vec<_>>>()?;
    let ext_refs: Vec<&TemporalRelation> = extended.iter().collect();
    let dr = args[0].data_width();
    let ds = args.get(1).map_or(0, |s| s.data_width());
    let ext_op = remap_op(op, dr, ds);
    let ext_result = match ext_op.evaluate(alg, &ext_refs) {
        Ok(r) => r,
        Err(_) => return Ok(false),
    };
    let data_schema = ext_result.data_schema();
    let names: Vec<String> = data_schema.cols().iter().map(|c| c.name.clone()).collect();
    let contributing: Vec<usize> = match op {
        TemporalOp::AntiJoin { .. } => vec![0],
        _ => (0..args.len()).collect(),
    };
    Ok(contributing
        .into_iter()
        .all(|i| names.iter().any(|n| n == &format!("__x{i}"))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn r() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            vec![
                (vec![Value::str("a")], Interval::of(0, 10)),
                (vec![Value::str("b")], Interval::of(3, 7)),
            ],
        )
        .unwrap()
    }

    fn s() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            vec![
                (vec![Value::str("a")], Interval::of(5, 20)),
                (vec![Value::str("c")], Interval::of(0, 4)),
            ],
        )
        .unwrap()
    }

    fn ops_with_claims() -> Vec<(TemporalOp, bool, bool)> {
        // θ: r.v = s.v in plain coordinates (r data=1 → r=(v,ts,te)).
        let theta = Some(col(0).eq(col(3)));
        vec![
            (
                TemporalOp::Selection {
                    predicate: col(0).eq(lit(Value::str("a"))),
                },
                true,
                true,
            ),
            (TemporalOp::CartesianProduct, true, true),
            (
                TemporalOp::Join {
                    theta: theta.clone(),
                },
                true,
                true,
            ),
            (
                TemporalOp::LeftOuterJoin {
                    theta: theta.clone(),
                },
                true,
                true,
            ),
            (
                TemporalOp::RightOuterJoin {
                    theta: theta.clone(),
                },
                true,
                true,
            ),
            (
                TemporalOp::FullOuterJoin {
                    theta: theta.clone(),
                },
                true,
                true,
            ),
            (TemporalOp::AntiJoin { theta }, true, true),
            (TemporalOp::Projection { attrs: vec![0] }, true, false),
            (
                TemporalOp::Aggregation {
                    group: vec![],
                    aggs: vec![(AggCall::count_star(), "c".to_string())],
                },
                true,
                false,
            ),
            (TemporalOp::Difference, false, false),
            (TemporalOp::Intersection, false, false),
            (TemporalOp::Union, false, false),
        ]
    }

    #[test]
    fn table1_claims_verified_executably() {
        let alg = TemporalAlgebra::default();
        let (rr, ss) = (r(), s());
        for (op, robust, propagating) in ops_with_claims() {
            let args: Vec<&TemporalRelation> = if op.arity() == 1 {
                vec![&rr]
            } else {
                vec![&rr, &ss]
            };
            let got_robust = check_schema_robust(&op, &args, &alg).unwrap();
            assert_eq!(
                got_robust,
                robust,
                "schema robustness of {} should be {robust}",
                op.name()
            );
            if got_robust {
                let got_prop = check_timestamp_propagating(&op, &args, &alg).unwrap();
                assert_eq!(
                    got_prop,
                    propagating,
                    "timestamp propagation of {} should be {propagating}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn table1_matches_paper_shape() {
        let t = table1();
        assert_eq!(t.len(), 12);
        assert_eq!(t.iter().filter(|p| p.schema_robust).count(), 9);
        assert_eq!(t.iter().filter(|p| p.timestamp_propagating).count(), 7);
        // No operator propagates without being robust.
        assert!(t
            .iter()
            .all(|p| p.schema_robust || !p.timestamp_propagating));
        let rendered = render_table1();
        assert!(rendered.contains("σ"));
        assert!(rendered.contains("yes"));
    }
}
