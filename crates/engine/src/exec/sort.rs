//! Sort: materialize the input and emit in key order.
//!
//! The temporal adjustment pipeline (paper Figs. 8/9) sorts the
//! group-construction join output by (group identity, intersection
//! timestamps); this node provides that ordering.

use std::cmp::Ordering;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::{collect_rows_batched, BoxedExec, ExecNode};
use crate::expr::SortKey;
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

/// Compare two evaluated key vectors under the given sort keys.
fn cmp_keys(keys: &[SortKey], a: &[Value], b: &[Value]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let (va, vb) = (&a[i], &b[i]);
        let ord = match (va.is_null(), vb.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = va.cmp(vb);
                if k.desc {
                    o.reverse()
                } else {
                    o
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a row vector in place by `keys` (decorate–sort–undecorate).
pub fn sort_rows(rows: &mut Vec<Row>, keys: &[SortKey]) -> EngineResult<()> {
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            kv.push(k.expr.eval(row.values())?);
        }
        decorated.push((kv, row));
    }
    decorated.sort_by(|(ka, ra), (kb, rb)| cmp_keys(keys, ka, kb).then_with(|| ra.cmp(rb)));
    rows.extend(decorated.into_iter().map(|(_, r)| r));
    Ok(())
}

/// [`sort_rows`] with vectorized key decoration: each key expression is
/// evaluated once over the whole row vector instead of once per row, and
/// all-integer key sets (every temporal sort: data ids, timestamps, split
/// points) are order-encoded into flat `i64` vectors so the comparator is
/// a machine-word slice compare instead of a `Value` tree walk. Same order
/// as `sort_rows` in every case: the encoding is an order-isomorphism on
/// the admitted values, with equal encodings ⇔ equal keys, so ties fall to
/// the identical full-row comparator.
pub fn sort_rows_batched(rows: &mut Vec<Row>, keys: &[SortKey]) -> EngineResult<()> {
    let mut key_cols = Vec::with_capacity(keys.len());
    for k in keys {
        key_cols.push(k.expr.eval_batch(rows)?);
    }
    if let Some(enc) = encode_int_keys(&key_cols, keys) {
        let k = keys.len();
        let mut decorated: Vec<(usize, Row)> = rows.drain(..).enumerate().collect();
        decorated.sort_by(|(ia, ra), (ib, rb)| {
            enc[ia * k..ia * k + k]
                .cmp(&enc[ib * k..ib * k + k])
                .then_with(|| ra.cmp(rb))
        });
        rows.extend(decorated.into_iter().map(|(_, r)| r));
        return Ok(());
    }
    let mut key_cols: Vec<_> = key_cols.into_iter().map(Vec::into_iter).collect();
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let kv: Vec<Value> = key_cols
            .iter_mut()
            .map(|c| c.next().expect("key column length"))
            .collect();
        decorated.push((kv, row));
    }
    decorated.sort_by(|(ka, ra), (kb, rb)| cmp_keys(keys, ka, kb).then_with(|| ra.cmp(rb)));
    rows.extend(decorated.into_iter().map(|(_, r)| r));
    Ok(())
}

/// Encode evaluated key columns as flat `i64`s (row-major, stride =
/// `keys.len()`) such that ascending lexicographic order of the encodings
/// equals [`cmp_keys`] order, and equal encodings imply equal key values.
/// NULLs map to the `i64::MIN`/`i64::MAX` sentinels per their position
/// (nulls-first/last) and descending keys negate. Returns `None` — falling
/// back to the general comparator — when any value is not Int/NULL or lies
/// at the extremes, where sentinel/negation collisions would break the
/// isomorphism.
fn encode_int_keys(key_cols: &[Vec<Value>], keys: &[SortKey]) -> Option<Vec<i64>> {
    let n = key_cols.first().map_or(0, Vec::len);
    let mut enc = vec![0i64; n * keys.len()];
    for (ki, (col, key)) in key_cols.iter().zip(keys).enumerate() {
        for (ri, v) in col.iter().enumerate() {
            enc[ri * keys.len() + ki] = match v {
                Value::Null => {
                    // NULLS FIRST sorts below everything, NULLS LAST above
                    // — in encoding space, regardless of `desc` (cmp_keys
                    // places NULLs before applying the direction).
                    if key.nulls_first {
                        i64::MIN
                    } else {
                        i64::MAX
                    }
                }
                Value::Int(x) if *x > i64::MIN + 1 && *x < i64::MAX - 1 => {
                    if key.desc {
                        -x
                    } else {
                        *x
                    }
                }
                _ => return None,
            };
        }
    }
    Some(enc)
}

/// Materializing sort node.
pub struct SortExec {
    input: BoxedExec,
    keys: Vec<SortKey>,
    sorted: Option<std::vec::IntoIter<Row>>,
}

impl SortExec {
    pub fn new(input: BoxedExec, keys: Vec<SortKey>) -> Self {
        SortExec {
            input,
            keys,
            sorted: None,
        }
    }
}

impl ExecNode for SortExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> EngineResult<Option<Row>> {
        if self.sorted.is_none() {
            let mut rows = Vec::new();
            while let Some(r) = self.input.next()? {
                rows.push(r);
            }
            sort_rows(&mut rows, &self.keys)?;
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().expect("initialized").next())
    }

    /// Batch path: materialize through the input's batch protocol, sort
    /// with vectorized key decoration, then drain a chunk per call.
    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        if self.sorted.is_none() {
            let mut rows = collect_rows_batched(self.input.as_mut())?;
            sort_rows_batched(&mut rows, &self.keys)?;
            self.sorted = Some(rows.into_iter());
        }
        let it = self.sorted.as_mut().expect("initialized");
        let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
        if chunk.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::new(self.input.schema().clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, SeqScanExec};
    use crate::expr::col;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};

    #[test]
    fn multi_key_sort_asc_desc() {
        let rel = int2_rel(("a", "b"), &[(2, 1), (1, 2), (1, 9), (2, 5)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let sort = Box::new(SortExec::new(
            scan,
            vec![SortKey::asc(col(0)), SortKey::desc(col(1))],
        ));
        let out = collect(sort).unwrap();
        let vals: Vec<(i64, i64)> = out
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(vals, vec![(1, 9), (1, 2), (2, 5), (2, 1)]);
    }

    #[test]
    fn nulls_ordering() {
        let rel = Relation::from_values(
            Schema::new(vec![Column::new("a", DataType::Int)]),
            vec![vec![Value::Int(2)], vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap()
        .into_shared();
        let scan = Box::new(SeqScanExec::new(rel.clone()));
        let sort = Box::new(SortExec::new(scan, vec![SortKey::asc(col(0))]));
        let out = collect(sort).unwrap();
        assert!(out.rows()[0][0].is_null());
        // NULLS LAST on desc by default:
        let scan = Box::new(SeqScanExec::new(rel));
        let sort = Box::new(SortExec::new(scan, vec![SortKey::desc(col(0))]));
        let out = collect(sort).unwrap();
        assert!(out.rows()[2][0].is_null());
        assert_eq!(out.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn sort_is_deterministic_via_row_tiebreak() {
        let rel = int2_rel(("a", "b"), &[(1, 5), (1, 3), (1, 4)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        // Sorting only by column a — ties broken by full row order.
        let sort = Box::new(SortExec::new(scan, vec![SortKey::asc(col(0))]));
        let out = collect(sort).unwrap();
        let b: Vec<i64> = out.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(b, vec![3, 4, 5]);
    }
}
