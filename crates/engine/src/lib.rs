//! # temporal-engine
//!
//! An in-memory relational query engine built from scratch. It plays the role
//! that the PostgreSQL 9.0 kernel plays in *Temporal Alignment* (Dignös,
//! Böhlen, Gamper; SIGMOD 2012): the nontemporal substrate on which the
//! temporal primitives and reduction rules of the paper are implemented.
//!
//! The engine deliberately mirrors the parts of PostgreSQL the paper relies
//! on:
//!
//! * a **Volcano-style pipelined executor** ([`exec::ExecNode`]) — the
//!   paper's `ExecAdjustment` (Fig. 10) plugs in as one more node. A
//!   vectorized batch protocol ([`exec::ExecNode::next_batch`]) pushes
//!   [`batch::RowBatch`]es through the same pipelines, amortizing per-tuple
//!   dispatch in the hot operators;
//! * **three join algorithms** — nested-loop, hash and sort-merge — selected
//!   by a **cost-based planner** ([`plan::Planner`]) honouring the
//!   PostgreSQL-style switches `enable_nestloop`, `enable_hashjoin` and
//!   `enable_mergejoin` ([`plan::PlannerConfig`]), which drive the paper's
//!   Fig. 13 experiment;
//! * **extension plan nodes** ([`plan::ExtensionNode`]) so that downstream
//!   crates add the temporal alignment / normalization / absorb operators
//!   without forking the engine, just as the paper adds custom nodes to the
//!   PostgreSQL parse/query/plan/execution trees (Sec. 6).
//!
//! The engine itself knows nothing about time: interval timestamps are plain
//! integer columns, which is precisely the architectural point of the paper
//! (reduced temporal queries are ordinary relational queries).
//!
//! ## Quick tour
//!
//! ```
//! use temporal_engine::prelude::*;
//!
//! // Build a relation.
//! let schema = Schema::new(vec![
//!     Column::new("name", DataType::Str),
//!     Column::new("dept", DataType::Int),
//! ]);
//! let rel = Relation::from_values(
//!     schema,
//!     vec![
//!         vec![Value::str("ann"), Value::Int(1)],
//!         vec![Value::str("joe"), Value::Int(2)],
//!     ],
//! )
//! .unwrap();
//!
//! // Plan and run: SELECT name FROM rel WHERE dept = 1.
//! let plan = LogicalPlan::inline_scan(rel)
//!     .filter(col(1).eq(lit(Value::Int(1))))
//!     .project_named(vec![(col(0), "name")])
//!     .unwrap();
//! let out = Planner::default().run(&plan, &Catalog::new()).unwrap();
//! assert_eq!(out.len(), 1);
//! ```

pub mod batch;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod expr;
pub mod hashing;
pub mod metrics;
pub mod plan;
pub mod recovery;
pub mod relation;
pub mod schema;
pub mod storage;
pub mod trace;
pub mod tuple;
pub mod value;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::batch::{RowBatch, BATCH_SIZE};
    pub use crate::catalog::{Catalog, TableSource};
    pub use crate::error::{EngineError, EngineResult};
    pub use crate::exec::{
        BoxedExec, ExecNode, ExecStats, ExecutionState, Instrumentation, OperatorStats,
    };
    pub use crate::expr::{
        col, lit, name, AggCall, AggFunc, ArithOp, CmpOp, ColumnRef, Expr, Func, SortKey,
    };
    pub use crate::metrics::{
        Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    };
    pub use crate::plan::{
        ExtensionNode, JoinType, LogicalPlan, PhysicalPlan, Planner, PlannerConfig, SetOpKind,
    };
    pub use crate::relation::Relation;
    pub use crate::schema::{Column, DataType, Schema};
    pub use crate::storage::StoredTable;
    pub use crate::trace::{Span, Tracer};
    pub use crate::tuple::Row;
    pub use crate::value::Value;
}
