//! The paper's running example (Example 1, Figs. 1–7): a hotel with
//! seasonal price categories and reservations, on the name-based frame
//! API.
//!
//! Reproduces:
//! * query Q1 = R ⟕ᵀ_{Min ≤ DUR(R.T) ≤ Max} P (Fig. 1b) — a temporal left
//!   outer join whose θ references the *original* timestamp of R, i.e.
//!   extended snapshot reducibility via timestamp propagation;
//! * the normalization N_{}(R; R) (Fig. 3);
//! * the alignment of P with respect to U(R) (Fig. 4);
//! * query Q2 = ϑᵀ_{AVG(DUR(R.T))}(R) (Fig. 7) — temporal aggregation.
//!
//! Run with: `cargo run --example hotel_reservations`

use temporal_alignment::core::interval::month::{fmt as mfmt, ym};
use temporal_alignment::prelude::*;

fn reservations() -> TemporalRelation {
    // R: guest name N, valid-time T.
    TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )
    .expect("valid fixture")
}

fn prices() -> TemporalRelation {
    // P: daily price A, Min/Max stay duration for the category, valid T.
    let row = |a: i64, min: i64, max: i64, from: (i64, i64), to: (i64, i64)| {
        (
            vec![Value::Int(a), Value::Int(min), Value::Int(max)],
            Interval::of(ym(from.0, from.1), ym(to.0, to.1)),
        )
    };
    TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            row(50, 1, 2, (2012, 1), (2012, 6)),  // s1: short term, winter
            row(40, 3, 7, (2012, 1), (2012, 6)),  // s2: long term, winter
            row(30, 8, 12, (2012, 1), (2013, 1)), // s3: permanent
            row(50, 1, 2, (2012, 10), (2013, 1)), // s4
            row(40, 3, 7, (2012, 10), (2013, 1)), // s5
        ],
    )
    .expect("valid fixture")
}

/// `DUR` over the propagated timestamps, by name.
fn dur_u() -> Expr {
    Expr::Func(Func::Dur, vec![col("us"), col("ue")])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.register("r", &reservations())?;
    db.register("p", &prices())?;
    println!(
        "R (reservations):\n{}",
        db.table("r")?.collect()?.to_table_with(mfmt)
    );
    println!(
        "P (prices):\n{}",
        db.table("p")?.collect()?.to_table_with(mfmt)
    );

    // ---- Q1 (Fig. 1b) ----------------------------------------------------
    // The join predicate references R.T, so we propagate R's timestamp
    // first (extended snapshot reducibility): U(R) gains data columns
    // us/ue that θ can reference by name.
    let ur = db.table("r")?.extend();
    println!(
        "U(R) (timestamps propagated):\n{}",
        ur.collect()?.to_table_with(mfmt)
    );

    // θ: Min ≤ DUR(us, ue) ≤ Max — every operand by name.
    let theta = dur_u().between(col("min"), col("max"));

    let q1_with_u = ur
        .clone()
        .left_outer_join(db.table("p")?, theta)
        .collect()?;
    // Drop the propagated timestamps (Def. 4's final projection): keep
    // (n, a, min, max, T).
    let q1 = q1_with_u.project_data(&[0, 3, 4, 5])?;
    println!(
        "Q1 = R ⟕ᵀ(Min ≤ DUR(R.T) ≤ Max) P   (Fig. 1b):\n{}",
        q1.sorted().to_table_with(mfmt)
    );

    // The two ω tuples z3/z4 stay separate (change preservation): the
    // change at 2012/8, where one reservation of Ann ends and another
    // starts, is preserved.
    let omega_rows = q1.iter().filter(|(d, _)| d[1].is_null()).count();
    assert_eq!(omega_rows, 2);

    // ---- Fig. 3: normalization N_{}(R; R) ---------------------------------
    let n = db
        .table("r")?
        .normalize_using(db.table("r")?, &[])
        .collect()?;
    println!(
        "N_{{}}(R; R)   (Fig. 3):\n{}",
        n.sorted().to_table_with(mfmt)
    );

    // ---- Fig. 4: alignment of P with respect to U(R) ----------------------
    // θ ≡ Min ≤ DUR(U) ≤ Max over P ++ U(R) rows — the same names
    // resolve regardless of which side of the alignment carries them.
    let aligned_p = db
        .table("p")?
        .align(ur.clone(), dur_u().between(col("min"), col("max")))
        .collect()?;
    println!(
        "P Φ_θ U(R)   (Fig. 4):\n{}",
        aligned_p.sorted().to_table_with(mfmt)
    );

    // ---- Q2 (Fig. 7): temporal aggregation --------------------------------
    // AVG over the duration of the *original* reservation intervals, so it
    // operates on U(R); grouping attributes B = {} (a single group per
    // normalized fragment).
    let q2 = ur
        .aggregate(&[], vec![(AggCall::new(AggFunc::Avg, dur_u()), "avg_dur")])
        .collect()?;
    println!(
        "Q2 = ϑᵀ AVG(DUR(R.T)) (R)   (Fig. 7):\n{}",
        q2.sorted().to_table_with(mfmt)
    );

    Ok(())
}
