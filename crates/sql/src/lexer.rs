//! Hand-written SQL tokenizer. Identifiers and keywords are
//! case-insensitive and folded to lowercase, as in PostgreSQL.

use crate::error::{SqlError, SqlResult};
use crate::token::{Kw, Token};

/// Tokenize `input` into a vector ending with [`Token::Eof`].
pub fn lex(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        pos: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(SqlError::Lex {
                            pos: i,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[j] == b'\'' {
                        // '' escapes a quote
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float =
                    i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let v: f64 = text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("bad float literal '{text}'"),
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let text = &input[start..i];
                    let v: i64 = text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("bad integer literal '{text}'"),
                    })?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = input[start..i].to_ascii_lowercase();
                match Kw::from_str(&word) {
                    Some(k) => out.push(Token::Keyword(k)),
                    None => out.push(Token::Ident(word)),
                }
            }
            other => {
                return Err(SqlError::Lex {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("SeLeCt r.Ts FROM R").unwrap();
        assert_eq!(toks[0], Token::Keyword(Kw::Select));
        assert_eq!(toks[1], Token::Ident("r".into()));
        assert_eq!(toks[2], Token::Dot);
        assert_eq!(toks[3], Token::Ident("ts".into()));
        assert_eq!(toks[4], Token::Keyword(Kw::From));
        assert_eq!(toks[5], Token::Ident("r".into()));
    }

    #[test]
    fn operators_and_numbers() {
        let toks = lex("a <= 10 AND b <> 3.5 != 2").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Float(3.5)));
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn strings_with_escapes_and_comments() {
        let toks = lex("select 'an''n' -- trailing comment\nfrom t").unwrap();
        assert!(toks.contains(&Token::Str("an'n".into())));
        assert!(toks.contains(&Token::Keyword(Kw::From)));
    }

    #[test]
    fn temporal_keywords() {
        let toks = lex("(r ALIGN p ON x) NORMALIZE USING ABSORB").unwrap();
        assert!(toks.contains(&Token::Keyword(Kw::Align)));
        assert!(toks.contains(&Token::Keyword(Kw::Normalize)));
        assert!(toks.contains(&Token::Keyword(Kw::Using)));
        assert!(toks.contains(&Token::Keyword(Kw::Absorb)));
    }

    #[test]
    fn errors_have_positions() {
        let err = lex("select ?").unwrap_err();
        match err {
            SqlError::Lex { pos, .. } => assert_eq!(pos, 7),
            other => panic!("unexpected {other:?}"),
        }
        assert!(lex("select 'oops").is_err());
    }

    #[test]
    fn minus_vs_comment() {
        let toks = lex("1 - 2").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(1), Token::Minus, Token::Int(2), Token::Eof]
        );
    }
}
