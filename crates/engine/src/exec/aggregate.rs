//! Hash aggregation ϑ: group rows and fold aggregate functions.
//!
//! Output layout: group expressions first, then one column per aggregate.
//! Grouping equality is structural (NULL groups with NULL), matching the
//! paper's set semantics where ω values group together.

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::{EngineError, EngineResult};
use crate::exec::{collect_rows, collect_rows_batched, BoxedExec, ExecNode, ExecutionState};
use crate::expr::{AggCall, AggFunc, Expr};
use crate::hashing::FxHashMap;
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::{num_add, Value};

/// One accumulator per (group, aggregate call).
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum(Option<Value>),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) -> EngineResult<()> {
        match self {
            Acc::Count(c) => {
                // CountStar passes None ⇒ always count; Count skips NULLs.
                match v {
                    None => *c += 1,
                    Some(val) if !val.is_null() => *c += 1,
                    _ => {}
                }
            }
            Acc::Sum(acc) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *acc = Some(match acc.take() {
                            None => val.clone(),
                            Some(cur) => num_add(&cur, val)?,
                        });
                    }
                }
            }
            Acc::Avg { sum, count } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let d = val.as_double().ok_or_else(|| {
                            EngineError::TypeError(format!(
                                "avg over non-numeric {}",
                                val.type_name()
                            ))
                        })?;
                        *sum += d;
                        *count += 1;
                    }
                }
            }
            Acc::Min(acc) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(cur) => matches!(val.sql_cmp(cur), Some(std::cmp::Ordering::Less)),
                        };
                        if replace {
                            *acc = Some(val.clone());
                        }
                    }
                }
            }
            Acc::Max(acc) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(cur) => {
                                matches!(val.sql_cmp(cur), Some(std::cmp::Ordering::Greater))
                            }
                        };
                        if replace {
                            *acc = Some(val.clone());
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(*c),
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
        }
    }
}

/// Aggregate a row set directly (shared by [`HashAggregateExec`] and by the
/// temporal reference oracle, so both use byte-identical aggregate
/// semantics). Output rows are `group values ++ aggregate values`, in
/// first-seen group order. A global aggregate (`group` empty) over zero
/// rows yields one row of identity values.
pub fn aggregate_rows(rows: &[Row], group: &[Expr], aggs: &[AggCall]) -> EngineResult<Vec<Row>> {
    let mut index: FxHashMap<Row, usize> = FxHashMap::default();
    let mut groups: Vec<(Row, Vec<Acc>)> = Vec::new();

    for row in rows {
        let mut key_vals = Vec::with_capacity(group.len());
        for g in group {
            key_vals.push(g.eval(row.values())?);
        }
        let key = Row::new(key_vals);
        let slot = match index.get(&key) {
            Some(&i) => i,
            None => {
                let i = groups.len();
                index.insert(key.clone(), i);
                groups.push((key, aggs.iter().map(|a| Acc::new(a.func)).collect()));
                i
            }
        };
        let accs = &mut groups[slot].1;
        for (acc, call) in accs.iter_mut().zip(aggs) {
            match &call.arg {
                None => acc.update(None)?,
                Some(e) => {
                    let v = e.eval(row.values())?;
                    acc.update(Some(&v))?;
                }
            }
        }
    }

    if groups.is_empty() && group.is_empty() {
        groups.push((
            Row::new(vec![]),
            aggs.iter().map(|a| Acc::new(a.func)).collect(),
        ));
    }

    Ok(groups
        .into_iter()
        .map(|(key, accs)| {
            let mut vals = key.to_vec();
            vals.extend(accs.iter().map(|a| a.finish()));
            Row::new(vals)
        })
        .collect())
}

/// Hash-based grouped aggregation. Materializes on first `next()` and emits
/// groups in first-seen input order (deterministic).
pub struct HashAggregateExec {
    input: BoxedExec,
    group: Vec<Expr>,
    aggs: Vec<AggCall>,
    schema: Schema,
    out: Option<std::vec::IntoIter<Row>>,
}

impl HashAggregateExec {
    pub fn new(input: BoxedExec, group: Vec<Expr>, aggs: Vec<AggCall>, schema: Schema) -> Self {
        debug_assert_eq!(schema.len(), group.len() + aggs.len());
        HashAggregateExec {
            input,
            group,
            aggs,
            schema,
            out: None,
        }
    }

    fn compute(&mut self, state: &ExecutionState, batched: bool) -> EngineResult<Vec<Row>> {
        let rows = if batched {
            collect_rows_batched(self.input.as_mut(), state)?
        } else {
            collect_rows(self.input.as_mut(), state)?
        };
        aggregate_rows(&rows, &self.group, &self.aggs)
    }
}

impl ExecNode for HashAggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.out.is_none() {
            let rows = self.compute(state, false)?;
            self.out = Some(rows.into_iter());
        }
        Ok(self.out.as_mut().expect("initialized").next())
    }

    /// Batch path: drain the input batch-wise, then emit the groups a
    /// chunk at a time (group order is first-seen input order either way).
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        if self.out.is_none() {
            let rows = self.compute(state, true)?;
            self.out = Some(rows.into_iter());
        }
        let it = self.out.as_mut().expect("initialized");
        let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
        if chunk.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::new(self.schema.clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, ExecutionState, SeqScanExec};
    use crate::expr::col;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};

    fn agg_schema(names: &[(&str, DataType)]) -> Schema {
        Schema::new(names.iter().map(|(n, t)| Column::new(*n, *t)).collect())
    }

    #[test]
    fn grouped_aggregates() {
        let rel = int2_rel(("g", "v"), &[(1, 10), (2, 5), (1, 20), (2, 7)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let agg = Box::new(HashAggregateExec::new(
            scan,
            vec![col(0)],
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Sum, col(1)),
                AggCall::new(AggFunc::Avg, col(1)),
                AggCall::new(AggFunc::Min, col(1)),
                AggCall::new(AggFunc::Max, col(1)),
            ],
            agg_schema(&[
                ("g", DataType::Int),
                ("cnt", DataType::Int),
                ("sum", DataType::Int),
                ("avg", DataType::Double),
                ("min", DataType::Int),
                ("max", DataType::Int),
            ]),
        ));
        let out = collect(agg, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 2);
        // first-seen order: group 1 then group 2
        assert_eq!(
            out.rows()[0].to_vec(),
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(30),
                Value::Double(15.0),
                Value::Int(10),
                Value::Int(20)
            ]
        );
        assert_eq!(out.rows()[1][2], Value::Int(12));
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let rel = Relation::from_values(
            Schema::new(vec![Column::new("v", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]],
        )
        .unwrap()
        .into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let agg = Box::new(HashAggregateExec::new(
            scan,
            vec![],
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Count, col(0)),
                AggCall::new(AggFunc::Sum, col(0)),
            ],
            agg_schema(&[
                ("cs", DataType::Int),
                ("c", DataType::Int),
                ("s", DataType::Int),
            ]),
        ));
        let out = collect(agg, &ExecutionState::default()).unwrap();
        assert_eq!(
            out.rows()[0].to_vec(),
            vec![Value::Int(3), Value::Int(2), Value::Int(4)]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let rel = int2_rel(("g", "v"), &[]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let agg = Box::new(HashAggregateExec::new(
            scan,
            vec![],
            vec![AggCall::count_star(), AggCall::new(AggFunc::Max, col(1))],
            agg_schema(&[("c", DataType::Int), ("m", DataType::Int)]),
        ));
        let out = collect(agg, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
        assert!(out.rows()[0][1].is_null());
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let rel = int2_rel(("g", "v"), &[]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let agg = Box::new(HashAggregateExec::new(
            scan,
            vec![col(0)],
            vec![AggCall::count_star()],
            agg_schema(&[("g", DataType::Int), ("c", DataType::Int)]),
        ));
        let out = collect(agg, &ExecutionState::default()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn null_group_keys_group_together() {
        let rel = Relation::from_values(
            Schema::new(vec![
                Column::new("g", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Null, Value::Int(2)],
            ],
        )
        .unwrap()
        .into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let agg = Box::new(HashAggregateExec::new(
            scan,
            vec![col(0)],
            vec![AggCall::new(AggFunc::Sum, col(1))],
            agg_schema(&[("g", DataType::Int), ("s", DataType::Int)]),
        ));
        let out = collect(agg, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][1], Value::Int(3));
    }
}
