//! Row batches: the unit of vectorized execution.
//!
//! The Volcano protocol ([`crate::exec::ExecNode::next`]) moves one row per
//! virtual call; once whole temporal queries compile into a single deep
//! pipeline, that per-tuple dispatch dominates the hot loops. A
//! [`RowBatch`] amortizes it: operators exchange chunks of ~[`BATCH_SIZE`]
//! rows, and expression evaluation ([`crate::expr::Expr::eval_batch`]) runs
//! over a whole chunk in tight loops. Batches are row-major (`Vec<Row>`),
//! so the row-at-a-time path and the batch path share storage and can be
//! compared row for row; column accessors round out the API for consumers
//! that want column-wise views (e.g. extracting endpoint vectors).

use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

/// Target number of rows per batch. Large enough to amortize per-batch
/// overhead (virtual dispatch, expression-tree walks, schema clones) to
/// noise, small enough that a batch of typical rows stays cache-resident.
/// Operators may emit smaller batches (e.g. a selective filter) or larger
/// ones (e.g. a high-fanout join probe); only *empty* batches are illegal.
pub const BATCH_SIZE: usize = 1024;

/// A schema plus a chunk of rows — what [`crate::exec::ExecNode::next_batch`]
/// produces. Invariant: never empty (exhaustion is signalled by `None`).
#[derive(Debug, Clone)]
pub struct RowBatch {
    schema: Schema,
    rows: Vec<Row>,
}

impl RowBatch {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        RowBatch { schema, rows }
    }

    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        RowBatch {
            schema,
            rows: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    #[inline]
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Consume into the row vector.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Consume into `(schema, rows)`.
    pub fn into_parts(self) -> (Schema, Vec<Row>) {
        (self.schema, self.rows)
    }

    /// Column accessor: the values of column `i`, top to bottom.
    pub fn column(&self, i: usize) -> impl Iterator<Item = &Value> + '_ {
        self.rows.iter().map(move |r| &r[i])
    }

    /// Column accessor for integer columns (interval endpoints): `None`
    /// for NULL or non-integer values.
    pub fn int_column(&self, i: usize) -> Vec<Option<i64>> {
        self.rows.iter().map(|r| r[i].as_int()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn batch() -> RowBatch {
        RowBatch::new(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
            vec![
                Row::new(vec![Value::Int(1), Value::Int(10)]),
                Row::new(vec![Value::Null, Value::Int(20)]),
            ],
        )
    }

    #[test]
    fn accessors() {
        let b = batch();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.schema().len(), 2);
        let col_b: Vec<&Value> = b.column(1).collect();
        assert_eq!(col_b, vec![&Value::Int(10), &Value::Int(20)]);
        assert_eq!(b.int_column(0), vec![Some(1), None]);
        let (schema, rows) = b.into_parts();
        assert_eq!(schema.len(), 2);
        assert_eq!(rows.len(), 2);
    }
}
