//! Plan-first composition of the sequenced temporal algebra.
//!
//! [`TemporalPlan`] is a builder whose operators compose the Table-2
//! reductions into **one** [`LogicalPlan`]: a whole temporal query —
//! e.g. σᵀ ∘ ⋈ᵀ ∘ ϑᵀ — compiles to a single tree that the engine plans,
//! optimizes and executes with a single [`Planner::run`], exactly as the
//! paper integrates alignment into the DBMS kernel (Sec. 6) so "the
//! optimizer sees the whole query". This replaces the eager evaluation
//! style (materialize a [`TemporalRelation`] after every operator and
//! re-wrap it in an inline scan), which put a materialization barrier
//! between every pair of operators and hid the query from cross-operator
//! optimization.
//!
//! Two engine facilities make the composition sound and fast:
//!
//! * the reduction rules are self-referencing (a reduced θ-join aligns
//!   `r` with `s` *and* `s` with `r`; group-based operators normalize
//!   their input against itself), so a composed operand would be
//!   re-executed several times — unless it is a cheap-to-rescan leaf, the
//!   builder wraps it in a [`SpoolNode`] whose clones share one
//!   materialization;
//! * the planner's rewrite pass pushes non-timestamp selections across
//!   the alignment/normalization/absorb extension nodes (via their
//!   pass-through hooks), so a late σᵀ filters base relations early.

use temporal_engine::catalog::Catalog;
use temporal_engine::plan::SpoolNode;
use temporal_engine::prelude::*;

use crate::error::{TemporalError, TemporalResult};
use crate::primitives::absorb::AbsorbNode;
use crate::primitives::adjustment::{align_plan, antijoin_gaps_plan, normalize_plan};

use super::{
    reduce_aggregation, reduce_antijoin, reduce_join, reduce_projection, reduce_selection,
    reduce_setop, self_pairs,
};

/// A composed temporal query: a logical plan whose output is a temporal
/// relation (last two columns `ts`/`te`). Built by chaining the operators
/// of the sequenced temporal algebra; executed by one [`Planner::run`].
#[derive(Debug, Clone)]
pub struct TemporalPlan {
    plan: LogicalPlan,
}

/// Is this subtree cheap to execute more than once? Leaf scans share their
/// relation, and a pipelined filter/projection over them re-evaluates a
/// few expressions per row — cheaper than materializing, and it keeps the
/// subtree transparent to filter pushdown.
fn cheap_to_rescan(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::TableScan { .. } | LogicalPlan::InlineScan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            cheap_to_rescan(input)
        }
        _ => false,
    }
}

/// An operand that the reduction rules will reference more than once:
/// cheap subtrees are used as-is, composed subtrees are spooled so every
/// reference shares one materialization.
fn shared_operand(plan: LogicalPlan) -> LogicalPlan {
    if cheap_to_rescan(&plan) {
        plan
    } else {
        SpoolNode::shared(plan)
    }
}

fn check_temporal(schema: &Schema, what: &str) -> TemporalResult<()> {
    let n = schema.len();
    if n < 2 || schema.col(n - 2).dtype != DataType::Int || schema.col(n - 1).dtype != DataType::Int
    {
        return Err(TemporalError::InvalidRelation(format!(
            "{what} must produce a temporal relation (last two columns Int ts/te), found {schema}"
        )));
    }
    Ok(())
}

impl TemporalPlan {
    // ---- sources --------------------------------------------------------

    /// Scan a materialized temporal relation (shares its rows, no copy).
    pub fn scan(r: &crate::trel::TemporalRelation) -> TemporalPlan {
        TemporalPlan {
            plan: LogicalPlan::inline_scan(r.rel().clone()),
        }
    }

    /// Scan a catalog table whose schema is temporal.
    pub fn table(name: impl Into<String>, schema: Schema) -> TemporalResult<TemporalPlan> {
        check_temporal(&schema, "table")?;
        Ok(TemporalPlan {
            plan: LogicalPlan::table_scan(name, schema),
        })
    }

    /// Wrap an arbitrary logical plan with a temporal output schema — the
    /// bridge to the SQL front end and the raw primitives.
    pub fn from_logical(plan: LogicalPlan) -> TemporalResult<TemporalPlan> {
        check_temporal(&plan.schema(), "plan")?;
        Ok(TemporalPlan { plan })
    }

    // ---- tuple-based operators (aligner) --------------------------------

    /// σᵀ_θ(r) = σ_θ(r) — needs no adjustment (Table 2). Named column
    /// references in `predicate` are resolved against the input schema.
    pub fn selection(self, predicate: Expr) -> TemporalResult<TemporalPlan> {
        let schema = self.plan.schema();
        let predicate = if predicate.has_names() {
            predicate.resolve(&schema)?
        } else {
            predicate
        };
        let width = schema.len();
        if let Some(m) = predicate.max_col() {
            if m >= width {
                return Err(TemporalError::Incompatible(format!(
                    "selection predicate references column {m}, relation width is {width}"
                )));
            }
        }
        Ok(TemporalPlan {
            plan: reduce_selection(self.plan, predicate),
        })
    }

    /// ×ᵀ: temporal Cartesian product.
    pub fn cartesian_product(self, other: TemporalPlan) -> TemporalResult<TemporalPlan> {
        self.join(other, None)
    }

    /// ⋈ᵀ_θ: temporal inner join; `theta` is over the concatenation of
    /// full `self` and `other` rows.
    pub fn join(self, other: TemporalPlan, theta: Option<Expr>) -> TemporalResult<TemporalPlan> {
        self.reduced_join(other, JoinType::Inner, theta)
    }

    /// ⟕ᵀ_θ: temporal left outer join.
    pub fn left_outer_join(
        self,
        other: TemporalPlan,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalPlan> {
        self.reduced_join(other, JoinType::Left, theta)
    }

    /// ⟖ᵀ_θ: temporal right outer join.
    pub fn right_outer_join(
        self,
        other: TemporalPlan,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalPlan> {
        self.reduced_join(other, JoinType::Right, theta)
    }

    /// ⟗ᵀ_θ: temporal full outer join.
    pub fn full_outer_join(
        self,
        other: TemporalPlan,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalPlan> {
        self.reduced_join(other, JoinType::Full, theta)
    }

    fn reduced_join(
        self,
        other: TemporalPlan,
        join_type: JoinType,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalPlan> {
        let theta = self.resolve_theta(&other, theta)?;
        Ok(TemporalPlan {
            plan: reduce_join(
                shared_operand(self.plan),
                shared_operand(other.plan),
                join_type,
                theta,
            )?,
        })
    }

    /// ▷ᵀ_θ: temporal anti join (Table 2 reduction).
    pub fn anti_join(
        self,
        other: TemporalPlan,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalPlan> {
        let theta = self.resolve_theta(&other, theta)?;
        Ok(TemporalPlan {
            plan: reduce_antijoin(shared_operand(self.plan), shared_operand(other.plan), theta)?,
        })
    }

    /// ▷ᵀ_θ via the customized gaps-only primitive (Sec. 8 future work).
    pub fn anti_join_optimized(
        self,
        other: TemporalPlan,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalPlan> {
        let theta = self.resolve_theta(&other, theta)?;
        // The gaps-only plan references each operand once.
        Ok(TemporalPlan {
            plan: antijoin_gaps_plan(self.plan, other.plan, theta)?,
        })
    }

    /// Resolve a θ condition (expressed over the concatenation of full
    /// `self` and `other` rows) from named to positional references.
    fn resolve_theta(
        &self,
        other: &TemporalPlan,
        theta: Option<Expr>,
    ) -> TemporalResult<Option<Expr>> {
        match theta {
            Some(t) if t.has_names() => {
                let combined = self.plan.schema().concat(&other.plan.schema());
                Ok(Some(t.resolve(&combined)?))
            }
            other => Ok(other),
        }
    }

    // ---- group-based operators (splitter) -------------------------------

    /// πᵀ_B(r) = π_{B,T}(N_B(r; r)); `b` are data-column indices.
    pub fn projection(self, b: &[usize]) -> TemporalResult<TemporalPlan> {
        Ok(TemporalPlan {
            plan: reduce_projection(shared_operand(self.plan), b)?,
        })
    }

    /// ϑᵀ: temporal aggregation `_Bϑ_F(r) = _{B,T}ϑ_F(N_B(r; r))`.
    /// Output schema: `B…, aggregates…, ts, te`. Named column references
    /// in aggregate arguments are resolved against the input schema.
    pub fn aggregation(
        self,
        b: &[usize],
        aggs: Vec<(AggCall, String)>,
    ) -> TemporalResult<TemporalPlan> {
        let schema = self.plan.schema();
        let aggs = aggs
            .into_iter()
            .map(|(AggCall { func, arg }, alias)| {
                let arg = match arg {
                    Some(e) if e.has_names() => Some(e.resolve(&schema)?),
                    other => other,
                };
                Ok((AggCall { func, arg }, alias))
            })
            .collect::<TemporalResult<Vec<_>>>()?;
        Ok(TemporalPlan {
            plan: reduce_aggregation(shared_operand(self.plan), b, aggs)?,
        })
    }

    /// ∪ᵀ: temporal union `N_A(r; s) ∪ N_A(s; r)`.
    pub fn union(self, other: TemporalPlan) -> TemporalResult<TemporalPlan> {
        self.setop(SetOpKind::Union, other)
    }

    /// −ᵀ: temporal difference `N_A(r; s) − N_A(s; r)`.
    pub fn difference(self, other: TemporalPlan) -> TemporalResult<TemporalPlan> {
        self.setop(SetOpKind::Except, other)
    }

    /// ∩ᵀ: temporal intersection `N_A(r; s) ∩ N_A(s; r)`.
    pub fn intersection(self, other: TemporalPlan) -> TemporalResult<TemporalPlan> {
        self.setop(SetOpKind::Intersect, other)
    }

    fn setop(self, kind: SetOpKind, other: TemporalPlan) -> TemporalResult<TemporalPlan> {
        Ok(TemporalPlan {
            plan: reduce_setop(kind, shared_operand(self.plan), shared_operand(other.plan))?,
        })
    }

    // ---- primitives, exposed for composition ----------------------------

    /// The alignment primitive `r Φ_θ s` itself.
    pub fn align(self, other: TemporalPlan, theta: Option<Expr>) -> TemporalResult<TemporalPlan> {
        let theta = self.resolve_theta(&other, theta)?;
        Ok(TemporalPlan {
            plan: align_plan(self.plan, other.plan, theta)?,
        })
    }

    /// The normalization primitive `N_B(r; s)` itself; `b` pairs
    /// `(self data column, other data column)`.
    pub fn normalize(
        self,
        other: TemporalPlan,
        b: &[(usize, usize)],
    ) -> TemporalResult<TemporalPlan> {
        Ok(TemporalPlan {
            plan: normalize_plan(self.plan, shared_operand(other.plan), b)?,
        })
    }

    /// The absorb operator α.
    pub fn absorb(self) -> TemporalPlan {
        TemporalPlan {
            plan: AbsorbNode::plan(self.plan),
        }
    }

    /// `U(r)`: timestamp propagation (Def. 4) — appends copies of the
    /// interval endpoints as data columns `us`/`ue` before the interval,
    /// enabling θ conditions over the *original* timestamps.
    pub fn extend(self) -> TemporalResult<TemporalPlan> {
        Ok(TemporalPlan {
            plan: crate::primitives::extend::extend_plan(
                self.plan,
                crate::primitives::extend::US,
                crate::primitives::extend::UE,
            )?,
        })
    }

    /// Re-qualify every output column with `alias` (an identity
    /// projection), so self-joins can tell their two sides apart:
    /// `plan.aliased("a")` makes `col("a.k")` resolvable.
    pub fn aliased(self, alias: &str) -> TemporalPlan {
        let schema = self.plan.schema().with_qualifier(alias);
        let exprs: Vec<Expr> = (0..schema.len()).map(Expr::Col).collect();
        TemporalPlan {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs,
                schema,
            },
        }
    }

    /// πᵀ in self-normalizing form on explicit pairs is rarely needed;
    /// grouping pairs `(i, i)` for `N_B(r; r)` come from [`self_pairs`].
    pub fn self_normalize(self, b: &[usize]) -> TemporalResult<TemporalPlan> {
        let pairs = self_pairs(b);
        let shared = shared_operand(self.plan);
        Ok(TemporalPlan {
            plan: normalize_plan(shared.clone(), shared, &pairs)?,
        })
    }

    // ---- reflection and execution ---------------------------------------

    /// The composed logical plan.
    pub fn logical(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Consume into the composed logical plan.
    pub fn into_logical(self) -> LogicalPlan {
        self.plan
    }

    /// Output schema (`data…, ts, te`).
    pub fn schema(&self) -> Schema {
        self.plan.schema()
    }

    /// The optimized physical plan for the whole composed query — one
    /// tree, costed end to end.
    pub fn physical(&self, planner: &Planner, catalog: &Catalog) -> TemporalResult<PhysicalPlan> {
        Ok(planner.plan(&self.plan, catalog)?)
    }

    /// EXPLAIN the whole composed query as one physical tree. Under a
    /// parallel configuration the execution shape (exchanges, partition
    /// counts) is shown too — the same rendering SQL `EXPLAIN` produces.
    pub fn explain(&self, planner: &Planner, catalog: &Catalog) -> TemporalResult<String> {
        let physical = self.physical(planner, catalog)?;
        Ok(if planner.config.threads > 1 {
            physical.explain_parallel(&planner.config)
        } else {
            physical.explain()
        })
    }

    /// Execute the whole composed query with a **single** `Planner::run`.
    pub fn execute(&self, planner: &Planner) -> TemporalResult<crate::trel::TemporalRelation> {
        self.execute_on(planner, &Catalog::new())
    }

    /// Execute against a catalog (for plans over [`TemporalPlan::table`]).
    pub fn execute_on(
        &self,
        planner: &Planner,
        catalog: &Catalog,
    ) -> TemporalResult<crate::trel::TemporalRelation> {
        let out = planner.run(&self.plan, catalog)?;
        crate::trel::TemporalRelation::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TemporalAlgebra;
    use crate::interval::Interval;
    use crate::trel::TemporalRelation;

    fn rel(rows: &[(i64, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("k", DataType::Int)]),
            rows.iter()
                .map(|&(k, s, e)| (vec![Value::Int(k)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn chained_plan_matches_eager_evaluation() {
        // ϑᵀ_count(σᵀ_{k ≥ 1}(r ⋈ᵀ_{r.k = s.k} s)), one run vs three.
        let r = rel(&[(1, 0, 8), (2, 5, 12), (3, 1, 3)]);
        let s = rel(&[(1, 2, 4), (2, 6, 15), (2, 1, 5)]);
        let theta = col(0).eq(col(3));
        let planner = Planner::default();

        let plan = TemporalPlan::scan(&r)
            .join(TemporalPlan::scan(&s), Some(theta.clone()))
            .unwrap()
            .selection(col(0).ge(lit(1i64)))
            .unwrap()
            .aggregation(&[0], vec![(AggCall::count_star(), "cnt".to_string())])
            .unwrap();
        let composed = plan.execute(&planner).unwrap();

        let alg = TemporalAlgebra::default();
        let joined = alg.join(&r, &s, Some(theta)).unwrap();
        let selected = alg.selection(&joined, col(0).ge(lit(1i64))).unwrap();
        let eager = alg
            .aggregation(
                &selected,
                &[0],
                vec![(AggCall::count_star(), "cnt".to_string())],
            )
            .unwrap();

        assert!(
            composed.same_set(&eager),
            "composed:\n{composed}\neager:\n{eager}"
        );
    }

    #[test]
    fn composed_operands_are_spooled_leaves_are_not() {
        let r = rel(&[(1, 0, 5), (2, 3, 9)]);
        // Leaf join: no spool anywhere.
        let plan = TemporalPlan::scan(&r)
            .join(TemporalPlan::scan(&r), None)
            .unwrap();
        let text = plan.explain(&Planner::default(), &Catalog::new()).unwrap();
        assert!(!text.contains("Spool"), "{text}");
        // Group-based operator over a composed input: the join result is
        // referenced three times by the self-normalization and must spool.
        let nested = TemporalPlan::scan(&r)
            .join(TemporalPlan::scan(&r), None)
            .unwrap()
            .projection(&[0])
            .unwrap();
        let text = nested
            .explain(&Planner::default(), &Catalog::new())
            .unwrap();
        assert!(text.contains("Spool"), "{text}");
    }

    #[test]
    fn execute_twice_is_stable() {
        let r = rel(&[(1, 0, 5), (2, 3, 9)]);
        let plan = TemporalPlan::scan(&r)
            .join(TemporalPlan::scan(&r), None)
            .unwrap()
            .projection(&[0])
            .unwrap();
        let planner = Planner::default();
        let a = plan.execute(&planner).unwrap();
        let b = plan.execute(&planner).unwrap();
        assert!(a.same_set(&b));
    }

    #[test]
    fn from_logical_validates_temporal_shape() {
        let nontemporal = Relation::from_values(
            Schema::new(vec![Column::new("a", DataType::Str)]),
            vec![vec![Value::str("x")]],
        )
        .unwrap();
        assert!(TemporalPlan::from_logical(LogicalPlan::inline_scan(nontemporal)).is_err());
        let r = rel(&[(1, 0, 5)]);
        assert!(TemporalPlan::from_logical(LogicalPlan::inline_scan(r.rel().clone())).is_ok());
    }

    #[test]
    fn selection_validates_columns() {
        let r = rel(&[(1, 0, 5)]);
        assert!(TemporalPlan::scan(&r)
            .selection(col(17).gt(lit(0i64)))
            .is_err());
    }

    #[test]
    fn table_sources_execute_against_catalog() {
        let r = rel(&[(1, 0, 5), (2, 2, 8)]);
        let mut catalog = Catalog::new();
        catalog.register("t", r.rel().clone()).unwrap();
        let plan = TemporalPlan::table("t", r.schema().clone())
            .unwrap()
            .selection(col(0).eq(lit(2i64)))
            .unwrap();
        let out = plan.execute_on(&Planner::default(), &catalog).unwrap();
        assert_eq!(out.len(), 1);
    }
}
