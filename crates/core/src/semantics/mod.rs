//! The formal layer of the paper, made executable.
//!
//! * [`op`] — a uniform description of the operators of the temporal
//!   algebra, evaluable through the reduction rules;
//! * [`mod@timeslice`] — τ_t (Sec. 3.1);
//! * [`mod@lineage`] — lineage sets (Def. 6);
//! * [`snapshot`] — snapshot reducibility (Def. 1) and extended snapshot
//!   reducibility (Def. 4) checkers;
//! * [`change`] — change preservation (Def. 7) checker;
//! * [`properties`] — Table 1: schema-robust and timestamp-propagating
//!   operator classification, verified on counterexamples.
//!
//! Together these turn Theorem 1 into something tests can assert on
//! arbitrary inputs.

pub mod change;
pub mod lineage;
pub mod op;
pub mod properties;
pub mod snapshot;
pub mod timeslice;

pub use change::check_change_preservation;
pub use lineage::{lineage, Lineage};
pub use op::TemporalOp;
pub use snapshot::{check_snapshot_reducibility, critical_points};
pub use timeslice::timeslice;
