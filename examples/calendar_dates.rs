//! Day-granularity temporal data with civil dates, plus the side-car
//! utilities: Allen's interval relations and explicit coalescing — with
//! the sequenced queries going through the name-based frame API.
//!
//! Run with: `cargo run --example calendar_dates`

use temporal_alignment::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hotel bookings at day granularity, built from civil dates
    // (the granularity of the paper's Incumben dataset).
    let d = |s: &str| Date::parse(s).expect("valid date");
    let bookings = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("guest", DataType::Str),
            Column::new("room", DataType::Int),
        ]),
        vec![
            (
                vec![Value::str("ann"), Value::Int(101)],
                date_interval(d("2012-01-05"), d("2012-01-20"))?,
            ),
            (
                vec![Value::str("ann"), Value::Int(101)],
                date_interval(d("2012-01-20"), d("2012-02-03"))?, // extension
            ),
            (
                vec![Value::str("joe"), Value::Int(102)],
                date_interval(d("2012-01-15"), d("2012-01-25"))?,
            ),
        ],
    )?;
    println!("bookings:\n{}", bookings.to_table_with(fmt_day));

    // Allen relations between the stays.
    let iv: Vec<Interval> = bookings.iter().map(|(_, iv)| iv).collect();
    println!(
        "ann's first stay {} ann's extension  → {:?}",
        iv[0],
        relate(&iv[0], &iv[1])
    );
    println!(
        "ann's first stay {} joe's stay       → {:?}",
        iv[0],
        relate(&iv[0], &iv[2])
    );

    let db = Database::new();
    db.register("bookings", &bookings)?;

    // Occupied-rooms count over time (sequenced aggregation)…
    let occupancy = db
        .table("bookings")?
        .aggregate(&[], vec![(AggCall::count_star(), "occupied")])
        .collect()?;
    println!(
        "occupancy (change preserving):\n{}",
        occupancy.sorted().to_table_with(fmt_day)
    );

    // … and ann's presence: change-preserved fragments vs the coalesced
    // view. A lazy frame chains the filter and projection into one plan.
    let ann_rooms = db
        .table("bookings")?
        .filter(col("guest").eq(lit("ann")))
        .select(&["guest"])
        .collect()?;
    println!(
        "ann (change preserving):\n{}",
        ann_rooms.sorted().to_table_with(fmt_day)
    );
    let merged = coalesce(&ann_rooms)?;
    println!(
        "ann (coalesced for display):\n{}",
        merged.to_table_with(fmt_day)
    );
    assert!(snapshot_equivalent(&ann_rooms, &merged)?);

    Ok(())
}
