//! A blocking client for the line protocol: `tsql --connect` and the
//! in-process test harness both use it.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::protocol::{self, Response};
use crate::server::is_unix_addr;

/// Either transport, so the client code is transport-agnostic.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a `tsql --serve` instance.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connect to a TCP `host:port` or (if the address contains `/`) a
    /// Unix socket path.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let (reader, writer) = if is_unix_addr(addr) {
            let s = UnixStream::connect(addr)?;
            let peer = s.try_clone()?;
            (Stream::Unix(peer), Stream::Unix(s))
        } else {
            let s = TcpStream::connect(addr)?;
            let peer = s.try_clone()?;
            (Stream::Tcp(peer), Stream::Tcp(s))
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
        })
    }

    /// Execute one statement and read its framed response. The statement
    /// must be a single line (the protocol is line-oriented); embedded
    /// newlines are rejected here rather than silently splitting into
    /// two statements.
    pub fn execute(&mut self, sql: &str) -> io::Result<Response> {
        let stmt = sql.trim();
        if stmt.contains('\n') || stmt.contains('\r') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "statements must be a single line on the wire",
            ));
        }
        writeln!(self.writer, "{stmt}")?;
        self.writer.flush()?;
        protocol::read_response(&mut self.reader)
    }

    /// Send the quit marker; the server closes the connection.
    pub fn quit(mut self) -> io::Result<()> {
        writeln!(self.writer, "\\q")?;
        self.writer.flush()
    }
}
