//! The temporal aligner (Def. 10) and alignment `r Φ_θ s` (Def. 11).
//!
//! For tuple-based operators {σ, ×, ⋈, ⟕, ⟖, ⟗, ▷}, each `r` tuple is
//! adjusted *per matching `s` tuple*: one output interval for every
//! non-empty intersection `r.T ∩ s.T`, plus the maximal sub-intervals of
//! `r.T` not covered by any matching tuple. Proposition 3 then guarantees
//! matching pairs end up with *identical* timestamps, so the reduced join
//! only compares timestamps by equality; Lemma 1 bounds the output by
//! `2·n·m + n`.
//!
//! This module is the specification-level implementation; the pipelined
//! plane-sweep used by the algebra is in [`crate::primitives::adjustment`].

use std::collections::BTreeSet;

use temporal_engine::prelude::*;

use crate::error::{TemporalError, TemporalResult};
use crate::interval::Interval;
use crate::trel::TemporalRelation;

/// `align(r, g)` (Def. 10): all distinct non-empty intersections of `r`
/// with group intervals, plus the maximal uncovered sub-intervals of `r`.
pub fn align(r: Interval, group: &[Interval]) -> Vec<Interval> {
    let mut out: BTreeSet<Interval> = BTreeSet::new();
    for g in group {
        if let Some(i) = r.intersect(g) {
            out.insert(i);
        }
    }
    for gap in r.subtract_all(group) {
        out.insert(gap);
    }
    out.into_iter().collect()
}

/// Checker for Def. 10, used by property tests.
pub fn is_valid_alignment(r: Interval, group: &[Interval], out: &[Interval]) -> bool {
    let expected: BTreeSet<Interval> = align(r, group).into_iter().collect();
    let actual: BTreeSet<Interval> = out.iter().copied().collect();
    if actual.len() != out.len() {
        return false; // duplicates: the result must be a set
    }
    // Verify the closed-form result satisfies Def. 10 directly:
    // every produced interval is an intersection or a maximal gap …
    for t in &actual {
        let is_intersection = group.iter().any(|g| r.intersect(g) == Some(*t));
        let is_gap = r.subtract_all(group).contains(t);
        if !is_intersection && !is_gap {
            return false;
        }
    }
    // … and nothing required is missing.
    expected == actual
}

/// A θ condition for the alignment operator: a predicate over the
/// concatenation of a full `r` row and a full `s` row (data columns plus
/// ts/te, in that order). Per Def. 11, θ must only reference nontemporal
/// attributes — original timestamps are available through propagated
/// columns (the extend operator), never through `ts`/`te` themselves.
#[derive(Debug, Clone)]
pub enum Theta {
    /// Always true (Cartesian product and friends).
    True,
    /// An engine predicate over `r_row ++ s_row`.
    Predicate(Expr),
}

impl Theta {
    /// Evaluate against a pair of rows.
    pub fn eval(&self, r_row: &Row, s_row: &Row) -> TemporalResult<bool> {
        match self {
            Theta::True => Ok(true),
            Theta::Predicate(e) => {
                let combined = r_row.concat(s_row);
                Ok(e.eval_pred(combined.values())?)
            }
        }
    }

    /// The underlying expression, if any.
    pub fn as_expr(&self) -> Option<&Expr> {
        match self {
            Theta::True => None,
            Theta::Predicate(e) => Some(e),
        }
    }

    /// Build from an optional expression.
    pub fn from_option(e: Option<Expr>) -> Theta {
        match e {
            None => Theta::True,
            Some(e) => Theta::Predicate(e),
        }
    }
}

/// `r Φ_θ s` (Def. 11): quadratic reference implementation. For each `r`
/// tuple, its group is every `s` tuple satisfying θ; output tuples carry
/// `r`'s data values over the adjusted intervals.
pub fn align_ref(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: &Theta,
) -> TemporalResult<TemporalRelation> {
    if let Some(e) = theta.as_expr() {
        if let Some(m) = e.max_col() {
            let width = r.schema().len() + s.schema().len();
            if m >= width {
                return Err(TemporalError::Incompatible(format!(
                    "θ references column {m}, combined width is {width}"
                )));
            }
        }
    }
    let mut out: Vec<(Vec<Value>, Interval)> = Vec::new();
    for r_row in r.rows() {
        let mut group: Vec<Interval> = Vec::new();
        for s_row in s.rows() {
            if theta.eval(r_row, s_row)? {
                group.push(s.interval_of(s_row));
            }
        }
        for iv in align(r.interval_of(r_row), &group) {
            out.push((r.data_of(r_row).to_vec(), iv));
        }
    }
    TemporalRelation::from_rows(r.data_schema(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligner_matches_paper_fig2b() {
        // Fig. 2(b): r = [1,8), g1 = [2,5), g2 = [4,7)
        // → T1 = r∩g1 = [2,5), T2 = r∩g2 = [4,7), T3 = uncovered [1,2);
        // the tail [7,8) is also uncovered in our integer rendering.
        let r = Interval::of(1, 8);
        let g = vec![Interval::of(2, 5), Interval::of(4, 7)];
        let out = align(r, &g);
        assert_eq!(
            out,
            vec![
                Interval::of(1, 2),
                Interval::of(2, 5),
                Interval::of(4, 7),
                Interval::of(7, 8),
            ]
        );
        assert!(is_valid_alignment(r, &g, &out));
    }

    #[test]
    fn aligner_base_case_fig5() {
        // Fig. 5: n = 1, m = 2 → 2·m + 1 = 5 tuples.
        let r = Interval::of(1, 12);
        let g = vec![Interval::of(2, 4), Interval::of(6, 9)];
        let out = align(r, &g);
        assert_eq!(out.len(), 5);
        assert!(is_valid_alignment(r, &g, &out));
        // gaps: [1,2), [4,6), [9,12); intersections [2,4), [6,9)
        assert!(out.contains(&Interval::of(1, 2)));
        assert!(out.contains(&Interval::of(4, 6)));
        assert!(out.contains(&Interval::of(9, 12)));
    }

    #[test]
    fn empty_group_keeps_whole_interval() {
        let r = Interval::of(3, 9);
        assert_eq!(align(r, &[]), vec![r]);
    }

    #[test]
    fn duplicate_intersections_are_deduplicated() {
        let r = Interval::of(0, 10);
        // two group tuples with identical intersection [2,5)
        let g = vec![Interval::of(2, 5), Interval::of(2, 5)];
        let out = align(r, &g);
        assert_eq!(
            out,
            vec![Interval::of(0, 2), Interval::of(2, 5), Interval::of(5, 10)]
        );
    }

    #[test]
    fn nested_intersections_all_produced() {
        let r = Interval::of(0, 10);
        let g = vec![Interval::of(0, 8), Interval::of(2, 4)];
        let out = align(r, &g);
        assert!(out.contains(&Interval::of(0, 8)));
        assert!(out.contains(&Interval::of(2, 4)));
        assert!(out.contains(&Interval::of(8, 10)));
        assert_eq!(out.len(), 3);
    }

    fn rel(name: &str, rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::qualified(name, "v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn align_ref_lemma1_bound() {
        // |r̃| ≤ 2nm + n
        let r = rel("r", &[("a", 0, 10), ("b", 2, 8)]);
        let s = rel("s", &[("x", 1, 3), ("y", 4, 6), ("z", 5, 9)]);
        let out = align_ref(&r, &s, &Theta::True).unwrap();
        let (n, m) = (r.len() as i64, s.len() as i64);
        assert!((out.len() as i64) <= 2 * n * m + n);
    }

    #[test]
    fn align_ref_with_theta_filters_group() {
        // θ: r.v = s.v — only same-letter tuples form the group.
        let r = rel("r", &[("a", 0, 10)]);
        let s = rel("s", &[("a", 2, 4), ("b", 5, 7)]);
        // columns: r = (v, ts, te), s = (v, ts, te) → concat: r.v=0, s.v=3
        let theta = Theta::Predicate(col(0).eq(col(3)));
        let out = align_ref(&r, &s, &theta).unwrap();
        let ivs: Vec<Interval> = out.iter().map(|(_, iv)| iv).collect();
        assert_eq!(
            ivs,
            vec![Interval::of(0, 2), Interval::of(2, 4), Interval::of(4, 10)]
        );
    }

    #[test]
    fn align_ref_example8_shape() {
        // Paper Example 8 essence: value-equivalent overlapping outputs are
        // allowed in aligned relations (they stem from different s tuples).
        let r = rel("r", &[("x", 1, 6)]);
        let s = rel("s", &[("x", 1, 8), ("x", 2, 6)]);
        let out = align_ref(&r, &s, &Theta::True).unwrap();
        let ivs: Vec<Interval> = out.iter().map(|(_, iv)| iv).collect();
        assert_eq!(ivs, vec![Interval::of(1, 6), Interval::of(2, 6)]);
        // NOT duplicate free — by design (see paper Example 8).
        assert!(!out.is_duplicate_free());
    }

    #[test]
    fn align_ref_rejects_out_of_range_theta() {
        let r = rel("r", &[("a", 0, 1)]);
        let s = rel("s", &[("b", 0, 1)]);
        let theta = Theta::Predicate(col(11).eq(col(0)));
        assert!(align_ref(&r, &s, &theta).is_err());
    }
}
