//! Fig. 15: temporal outer joins — `align` (reduction rules) vs `sql`
//! (overlap predicates + NOT EXISTS) on the four workloads:
//! (a) O1 on Ddisj, (b) O1 on Deq, (c) O2 on Drand, (d) O3 on Incumben.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temporal_bench::{run_o1, run_o2, run_o3, Approach};
use temporal_datasets::{ddisj, deq, drand, incumben, prefix, IncumbenSpec};
use temporal_engine::prelude::*;

fn bench(c: &mut Criterion) {
    // Paper-faithful planner: the default config would auto-select the
    // sweep interval join on overlap patterns and change the figure.
    let planner = Planner::new(PlannerConfig::paper());

    // (a) O1 on Ddisj
    let mut group = c.benchmark_group("fig15a_o1_ddisj");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000] {
        let (r, s) = ddisj(n);
        for a in [Approach::Align, Approach::Sql] {
            group.bench_with_input(BenchmarkId::new(a.label(), n), &(&r, &s), |b, (r, s)| {
                b.iter(|| run_o1(a, r, s, &planner))
            });
        }
    }
    group.finish();

    // (b) O1 on Deq
    let mut group = c.benchmark_group("fig15b_o1_deq");
    group.sample_size(10);
    for &n in &[250usize, 500, 1_000] {
        let (r, s) = deq(n);
        for a in [Approach::Align, Approach::Sql] {
            group.bench_with_input(BenchmarkId::new(a.label(), n), &(&r, &s), |b, (r, s)| {
                b.iter(|| run_o1(a, r, s, &planner))
            });
        }
    }
    group.finish();

    // (c) O2 on Drand
    let mut group = c.benchmark_group("fig15c_o2_drand");
    group.sample_size(10);
    for &n in &[250usize, 500, 1_000] {
        let (r, s) = drand(n, 20120520);
        for a in [Approach::Align, Approach::Sql] {
            group.bench_with_input(BenchmarkId::new(a.label(), n), &(&r, &s), |b, (r, s)| {
                b.iter(|| run_o2(a, r, s, &planner))
            });
        }
    }
    group.finish();

    // (d) O3 on Incumben
    let data = incumben(IncumbenSpec::default());
    let mut group = c.benchmark_group("fig15d_o3_incumben");
    group.sample_size(10);
    for &n in &[1_000usize, 2_000, 4_000] {
        let r = prefix(&data, n);
        for a in [Approach::Align, Approach::Sql] {
            group.bench_with_input(BenchmarkId::new(a.label(), n), &r, |b, r| {
                b.iter(|| run_o3(a, r, r, &planner))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
