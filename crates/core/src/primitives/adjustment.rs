//! The pipelined adjustment primitive: the paper's `ExecAdjustment`
//! executor function (Fig. 10) plus the plan constructions that feed it
//! (Figs. 8, 9 and 12).
//!
//! Both temporal alignment (Def. 11, `isalign = true`) and temporal
//! normalization (Def. 9, `isalign = false`) are implemented as:
//!
//! 1. a **nontemporal left outer join** that attaches, to every `r` tuple,
//!    its group of matching `s` tuples (for alignment) or the candidate
//!    split points (for normalization). The engine's optimizer is free to
//!    pick nested-loop/hash/merge for this join — which is precisely what
//!    the paper's Fig. 13 experiment measures;
//! 2. a projection computing `P1`/`P2` (the precomputed intersection of
//!    the r- and s-timestamps, or the split point);
//! 3. a **sort** that partitions by the complete `r` tuple and orders each
//!    group by `(P1, P2)` (Fig. 9);
//! 4. the **plane sweep** over each sorted group ([`AdjustmentExec`]),
//!    which emits one tuple per `next()` call, fully pipelined.

use std::sync::Arc;

use temporal_engine::batch::{RowBatch, BATCH_SIZE};
use temporal_engine::exec::{ExecNode, ExecutionState};
use temporal_engine::plan::{CostModel, ExtensionNode, PlanStats};
use temporal_engine::prelude::*;

use crate::error::{TemporalError, TemporalResult};
use crate::trel::TemporalRelation;

/// Internal column names for the adjusted-point columns of the sweep input.
const P1: &str = "__p1";
const P2: &str = "__p2";

/// What the plane sweep emits (paper Fig. 10, plus the Sec. 8 future-work
/// specialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjustMode {
    /// Alignment (Def. 11): intersections and maximal uncovered pieces.
    Align,
    /// Normalization (Def. 9): split at the group's interior points.
    Normalize,
    /// Only the maximal uncovered pieces — the customized primitive for
    /// the anti join (Sec. 8: "customize the temporal primitives for
    /// specific temporal operators to not produce adjusted tuples that do
    /// not contribute to the result"): `r ▷ᵀ_θ s` *is* the gaps, so the
    /// intersections the generic aligner would emit (and the nontemporal
    /// anti join would then discard) are never produced.
    GapsOnly,
}

/// Build the logical plan for the temporal alignment `r Φ_θ s` (Def. 11)
/// following Fig. 8/9. `theta` is expressed over the concatenation of a
/// full `r` row and a full `s` row; the output schema equals `r`'s schema.
pub fn align_plan(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let r_schema = r.schema();
    let s_schema = s.schema();
    let (wr, ws) = (r_schema.len(), s_schema.len());
    if wr < 2 || ws < 2 {
        return Err(TemporalError::InvalidRelation(
            "alignment arguments must carry ts/te columns".into(),
        ));
    }
    if let Some(e) = &theta {
        if let Some(m) = e.max_col() {
            if m >= wr + ws {
                return Err(TemporalError::Incompatible(format!(
                    "θ references column {m}, combined width is {}",
                    wr + ws
                )));
            }
        }
    }
    let (r_ts, r_te) = (wr - 2, wr - 1);
    let (s_ts, s_te) = (wr + ws - 2, wr + ws - 1);

    // θ ∧ r.T ∩ s.T ≠ ∅ — as in Fig. 8, the overlap test joins the groups.
    let overlap = col(r_ts).lt(col(s_te)).and(col(s_ts).lt(col(r_te)));
    let cond = match theta {
        Some(t) => t.and(overlap),
        None => overlap,
    };
    let joined = r.join(s, JoinType::Left, Some(cond));

    // Project to (r.*, P1, P2) where [P1, P2) = r.T ∩ s.T (NULL for ω rows).
    let mut items: Vec<(Expr, String)> = (0..wr)
        .map(|i| (col(i), r_schema.col(i).name.clone()))
        .collect();
    items.push((
        Expr::Func(Func::Greatest, vec![col(r_ts), col(s_ts)]),
        P1.to_string(),
    ));
    items.push((
        Expr::Func(Func::Least, vec![col(r_te), col(s_te)]),
        P2.to_string(),
    ));
    let projected = joined.project_named(items)?;

    // Partition by the full r tuple, order groups by (P1, P2) — Fig. 9.
    let mut keys: Vec<SortKey> = (0..wr).map(|i| SortKey::asc(col(i))).collect();
    keys.push(SortKey::asc(col(wr)));
    keys.push(SortKey::asc(col(wr + 1)));
    let sorted = projected.sort(keys);

    Ok(LogicalPlan::extension(Arc::new(AdjustmentNode {
        input: sorted,
        out_schema: r_schema,
        mode: AdjustMode::Align,
    })))
}

/// The customized anti-join primitive (Sec. 8 future work): the plan that
/// directly produces `r ▷ᵀ_θ s` — each `r` tuple's *maximal sub-intervals
/// not covered by any matching `s` tuple* — using the same group
/// construction as [`align_plan`] but a gaps-only plane sweep. No second
/// alignment and no nontemporal anti join are needed.
pub fn antijoin_gaps_plan(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let r_schema = r.schema();
    let s_schema = s.schema();
    let (wr, ws) = (r_schema.len(), s_schema.len());
    if wr < 2 || ws < 2 {
        return Err(TemporalError::InvalidRelation(
            "anti-join arguments must carry ts/te columns".into(),
        ));
    }
    if let Some(e) = &theta {
        if let Some(m) = e.max_col() {
            if m >= wr + ws {
                return Err(TemporalError::Incompatible(format!(
                    "θ references column {m}, combined width is {}",
                    wr + ws
                )));
            }
        }
    }
    let (r_ts, r_te) = (wr - 2, wr - 1);
    let (s_ts, s_te) = (wr + ws - 2, wr + ws - 1);
    let overlap = col(r_ts).lt(col(s_te)).and(col(s_ts).lt(col(r_te)));
    let cond = match theta {
        Some(t) => t.and(overlap),
        None => overlap,
    };
    let joined = r.join(s, JoinType::Left, Some(cond));
    let mut items: Vec<(Expr, String)> = (0..wr)
        .map(|i| (col(i), r_schema.col(i).name.clone()))
        .collect();
    items.push((
        Expr::Func(Func::Greatest, vec![col(r_ts), col(s_ts)]),
        P1.to_string(),
    ));
    items.push((
        Expr::Func(Func::Least, vec![col(r_te), col(s_te)]),
        P2.to_string(),
    ));
    let projected = joined.project_named(items)?;
    let mut keys: Vec<SortKey> = (0..wr).map(|i| SortKey::asc(col(i))).collect();
    keys.push(SortKey::asc(col(wr)));
    keys.push(SortKey::asc(col(wr + 1)));
    let sorted = projected.sort(keys);
    Ok(LogicalPlan::extension(Arc::new(AdjustmentNode {
        input: sorted,
        out_schema: r_schema,
        mode: AdjustMode::GapsOnly,
    })))
}

/// Build the logical plan for the temporal normalization `N_B(r; s)`
/// (Def. 9) following Sec. 6.3: join `r` not with `s` directly but with the
/// union of its start and end points `π_{B,Ts/P1}(s) ∪ π_{B,Te/P1}(s)`,
/// keeping only points strictly inside `r.T`, then plane-sweep from split
/// point to split point. `b` pairs `(r data column, s data column)` define
/// the grouping equality; empty `b` means every `s` tuple is in the group.
pub fn normalize_plan(
    r: LogicalPlan,
    s: LogicalPlan,
    b: &[(usize, usize)],
) -> TemporalResult<LogicalPlan> {
    let r_schema = r.schema();
    let s_schema = s.schema();
    let (wr, ws) = (r_schema.len(), s_schema.len());
    if wr < 2 || ws < 2 {
        return Err(TemporalError::InvalidRelation(
            "normalization arguments must carry ts/te columns".into(),
        ));
    }
    for &(br, bs) in b {
        if br >= wr - 2 || bs >= ws - 2 {
            return Err(TemporalError::Incompatible(format!(
                "grouping pair ({br}, {bs}) out of bounds for data widths {} and {}",
                wr - 2,
                ws - 2
            )));
        }
    }
    let (s_ts, s_te) = (ws - 2, ws - 1);

    // Endpoint relation: π_{B, Ts as P1}(s) ∪ π_{B, Te as P1}(s).
    // The set-semantics union also removes duplicate split points early.
    let mut start_items: Vec<(Expr, String)> = b
        .iter()
        .map(|&(_, bs)| (col(bs), s_schema.col(bs).name.clone()))
        .collect();
    let mut end_items = start_items.clone();
    start_items.push((col(s_ts), P1.to_string()));
    end_items.push((col(s_te), P1.to_string()));
    let endpoints = s
        .clone()
        .project_named(start_items)?
        .set_op(SetOpKind::Union, s.project_named(end_items)?);

    // Join condition: B-equality plus the split point strictly inside r.T.
    let (r_ts, r_te) = (wr - 2, wr - 1);
    let p1_col = wr + b.len();
    let mut conjuncts: Vec<Expr> = b
        .iter()
        .enumerate()
        .map(|(i, &(br, _))| col(br).eq(col(wr + i)))
        .collect();
    conjuncts.push(col(p1_col).gt(col(r_ts)));
    conjuncts.push(col(p1_col).lt(col(r_te)));
    let cond = Expr::and_all(conjuncts).expect("non-empty");
    let joined = r.join(endpoints, JoinType::Left, Some(cond));

    // Project to (r.*, P1, P2 = NULL).
    let mut items: Vec<(Expr, String)> = (0..wr)
        .map(|i| (col(i), r_schema.col(i).name.clone()))
        .collect();
    items.push((col(p1_col), P1.to_string()));
    items.push((Expr::Lit(Value::Null), P2.to_string()));
    let projected = joined.project_named(items)?;

    // Partition by the full r tuple, order by split point.
    let mut keys: Vec<SortKey> = (0..wr).map(|i| SortKey::asc(col(i))).collect();
    keys.push(SortKey::asc(col(wr)));
    let sorted = projected.sort(keys);

    Ok(LogicalPlan::extension(Arc::new(AdjustmentNode {
        input: sorted,
        out_schema: r_schema,
        mode: AdjustMode::Normalize,
    })))
}

/// Evaluate `r Φ_θ s` to a materialized relation with the given planner.
pub fn align_eval(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: Option<Expr>,
    planner: &Planner,
) -> TemporalResult<TemporalRelation> {
    let plan = align_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        theta,
    )?;
    let out = planner.run(&plan, &temporal_engine::catalog::Catalog::new())?;
    TemporalRelation::new(out)
}

/// Evaluate `N_B(r; s)` to a materialized relation with the given planner.
pub fn normalize_eval(
    r: &TemporalRelation,
    s: &TemporalRelation,
    b: &[(usize, usize)],
    planner: &Planner,
) -> TemporalResult<TemporalRelation> {
    let plan = normalize_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        b,
    )?;
    let out = planner.run(&plan, &temporal_engine::catalog::Catalog::new())?;
    TemporalRelation::new(out)
}

/// Logical extension node wrapping the plane sweep. Its child plan already
/// produces partitioned, sorted rows of shape `r_full ++ [P1, P2]`.
#[derive(Debug)]
pub struct AdjustmentNode {
    input: LogicalPlan,
    out_schema: Schema,
    mode: AdjustMode,
}

impl ExtensionNode for AdjustmentNode {
    fn name(&self) -> &str {
        match self.mode {
            AdjustMode::Align => "TemporalAligner",
            AdjustMode::Normalize => "TemporalNormalizer",
            AdjustMode::GapsOnly => "TemporalAntiAligner",
        }
    }

    fn inputs(&self) -> Vec<&LogicalPlan> {
        vec![&self.input]
    }

    fn with_new_inputs(&self, mut inputs: Vec<LogicalPlan>) -> Arc<dyn ExtensionNode> {
        assert_eq!(inputs.len(), 1);
        Arc::new(AdjustmentNode {
            input: inputs.remove(0),
            out_schema: self.out_schema.clone(),
            mode: self.mode,
        })
    }

    fn schema(&self) -> Schema {
        self.out_schema.clone()
    }

    /// The cost estimates of Sec. 6.2/6.3: every input tuple yields at most
    /// three (alignment) or two (normalization) output tuples, at a cost of
    /// two (resp. one) tuple comparisons each — expressed through the
    /// planner's [`CostModel`] so composed temporal plans cost as one tree.
    fn estimate(&self, input_stats: &[PlanStats], model: &CostModel) -> PlanStats {
        let x = input_stats[0];
        let num_cols = self.out_schema.len() as f64;
        match self.mode {
            AdjustMode::Align => model.sweep(x, 3.0 * x.rows, 2.0 * num_cols),
            AdjustMode::Normalize => model.sweep(x, 2.0 * x.rows, num_cols),
            // Gaps only: at most one gap per input tuple plus the tails.
            AdjustMode::GapsOnly => model.sweep(x, x.rows, num_cols),
        }
    }

    /// The data columns of the sweep input pass through verbatim and key
    /// the partition into independent groups, so a selection on them
    /// commutes with the adjustment (a dropped group produces exactly the
    /// output tuples the selection would drop). The adjusted `ts`/`te`
    /// columns do **not** pass through.
    fn passthrough_column(&self, out_col: usize) -> Option<(usize, usize)> {
        (out_col + 2 < self.out_schema.len()).then_some((0, out_col))
    }

    fn build_exec(&self, mut children: Vec<BoxedExec>) -> EngineResult<BoxedExec> {
        let child = children.remove(0);
        Ok(Box::new(AdjustmentExec::new(
            child,
            self.out_schema.clone(),
            self.mode,
        )))
    }

    fn explain(&self) -> String {
        format!(
            "{} (plane sweep, {})",
            self.name(),
            match self.mode {
                AdjustMode::Align => "intersections + gaps",
                AdjustMode::Normalize => "split points",
                AdjustMode::GapsOnly => "gaps only",
            }
        )
    }
}

/// The paper's `ExecAdjustment` (Fig. 10): a pipelined plane sweep over
/// groups of join tuples. Each invocation returns a single result tuple or
/// `None` at the end — integrated into the Volcano pipeline exactly like
/// the PostgreSQL original. The batch protocol is also supported: one
/// `next_batch()` call sweeps whole sorted groups, pulling the input a
/// batch at a time and emitting a batch of adjusted tuples.
pub struct AdjustmentExec {
    input: BoxedExec,
    schema: Schema,
    mode: AdjustMode,
    r_width: usize,
    ts_idx: usize,
    te_idx: usize,
    p1_idx: usize,
    p2_idx: usize,
    started: bool,
    /// Last tuple of the group currently being finished.
    prev: Option<Row>,
    /// Tuple currently under the sweep line.
    curr: Option<Row>,
    /// Are `prev` and `curr` from the same group (same full r tuple)?
    sameleft: bool,
    sweepline: i64,
    /// Last produced tuple — consecutive duplicate suppression (the
    /// `out ≠ (curr.A, curr.P1, curr.P2)` test of Fig. 10).
    last_out: Option<Row>,
    /// Batch-mode input buffer: set once the node is driven through
    /// `next_batch()`, refilled a batch at a time.
    batched: bool,
    inbuf: std::collections::VecDeque<Row>,
    input_done: bool,
    /// May this node split its input into data-run partitions and sweep
    /// them on workers? True for planner-built nodes, false for the
    /// per-partition sub-sweeps (no nested fan-out).
    allow_parallel: bool,
    /// Output of a partitioned parallel sweep, drained a batch at a time.
    outbuf: Option<std::vec::IntoIter<Row>>,
}

impl AdjustmentExec {
    /// `input` rows are `r_full ++ [P1, P2]`, partitioned by the full
    /// `r` tuple and sorted by `(P1, P2)` within each partition;
    /// `out_schema` is `r`'s schema.
    pub fn new(input: BoxedExec, out_schema: Schema, mode: AdjustMode) -> AdjustmentExec {
        let r_width = out_schema.len();
        debug_assert_eq!(input.schema().len(), r_width + 2);
        AdjustmentExec {
            input,
            schema: out_schema,
            mode,
            r_width,
            ts_idx: r_width - 2,
            te_idx: r_width - 1,
            p1_idx: r_width,
            p2_idx: r_width + 1,
            started: false,
            prev: None,
            curr: None,
            sameleft: true,
            sweepline: 0,
            last_out: None,
            batched: false,
            inbuf: std::collections::VecDeque::new(),
            input_done: false,
            allow_parallel: true,
            outbuf: None,
        }
    }

    /// Partitioned sweep: materialize the (already sorted) input, cut it at
    /// data-run boundaries and sweep each partition with an independent
    /// serial sub-sweep on a worker. Concatenated in partition order this is
    /// row-identical to one serial sweep (see [`super::parallel`]); groups
    /// that would straddle a cut are pushed whole into the earlier
    /// partition. Falls back to the serial machinery (input pre-buffered)
    /// when the input is too small or collapses into one run.
    fn try_parallel(&mut self, state: &ExecutionState) -> EngineResult<()> {
        use super::parallel::{data_partition_ranges, RowsExec};
        use temporal_engine::exec::workers::par_run;
        self.allow_parallel = false;
        let in_schema = self.input.schema().clone();
        let rows = temporal_engine::exec::collect_rows_batched(self.input.as_mut(), state)?;
        let ranges = data_partition_ranges(&rows, self.ts_idx, state.threads());
        if !state.parallel(rows.len()) || ranges.len() <= 1 {
            self.batched = true;
            self.inbuf = rows.into();
            self.input_done = true;
            return Ok(());
        }
        let (schema, mode) = (self.schema.clone(), self.mode);
        let chunks = par_run(state.threads(), ranges.len(), |i| {
            let (a, b) = ranges[i];
            let mut sub = AdjustmentExec::new(
                Box::new(RowsExec::new(in_schema.clone(), rows[a..b].to_vec())),
                schema.clone(),
                mode,
            );
            sub.allow_parallel = false;
            temporal_engine::exec::collect_rows_batched(&mut sub, state)
        })?;
        state.note_partitions(ranges.len());
        self.started = true;
        self.prev = None; // serial machinery is done; serve from outbuf
        self.outbuf = Some(chunks.concat().into_iter());
        Ok(())
    }

    /// Build an output tuple: the r tuple's data values over `[s, e)`.
    fn make_out(&self, row: &Row, s: i64, e: i64) -> Row {
        let mut vals = Vec::with_capacity(self.r_width);
        vals.extend_from_slice(&row.values()[..self.ts_idx]);
        vals.push(Value::Int(s));
        vals.push(Value::Int(e));
        Row::new(vals)
    }

    /// Pull the next input tuple through whichever protocol this node is
    /// being driven with: direct `next()` in row mode, the refilled batch
    /// buffer in batch mode.
    fn fetch_input(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if !self.batched {
            return self.input.next(state);
        }
        loop {
            if let Some(row) = self.inbuf.pop_front() {
                return Ok(Some(row));
            }
            if self.input_done {
                return Ok(None);
            }
            match self.input.next_batch(state)? {
                Some(batch) => self.inbuf.extend(batch.into_rows()),
                None => self.input_done = true,
            }
        }
    }

    /// One step of the plane sweep of Fig. 10: produce the next adjusted
    /// tuple, or `None` when the input is exhausted.
    ///
    /// NOTE: [`ExecNode::next_batch`] below carries an unrolled copy of
    /// this state machine (same branches, clones turned into moves) — it
    /// is deliberately *not* shared, so the row path stays the unmodified
    /// baseline the batch speedups are measured against. Any change to the
    /// sweep rules must be mirrored there; `tests/batch_differential.rs`
    /// pins the two row-for-row.
    fn step(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if !self.started {
            self.started = true;
            self.curr = self.fetch_input(state)?;
            self.prev = self.curr.clone();
            self.sameleft = true;
            if let Some(c) = &self.curr {
                self.sweepline = c[self.ts_idx].expect_int("adjustment ts")?;
            }
        }
        loop {
            let Some(prev_row) = self.prev.clone() else {
                return Ok(None); // prev = ω: input exhausted
            };
            if self.sameleft {
                let curr_row = self
                    .curr
                    .clone()
                    .expect("sameleft group has a current tuple");
                let p1 = curr_row[self.p1_idx].as_int();
                if let Some(p1v) = p1 {
                    if self.sweepline < p1v {
                        // Fig. 10, first block: emit the uncovered piece
                        // [sweepline, P1) and advance the sweep line.
                        let out = self.make_out(&curr_row, self.sweepline, p1v);
                        self.sweepline = p1v;
                        self.last_out = Some(out.clone());
                        return Ok(Some(out));
                    }
                }
                // Fig. 10, second block (also entered when P1 is ω, i.e.
                // the r tuple matched nothing): emit the precomputed
                // intersection [P1, P2) unless it repeats the previous
                // output, then fetch the next tuple.
                let mut produced: Option<Row> = None;
                match self.mode {
                    AdjustMode::Align => {
                        if let (Some(p1v), Some(p2v)) = (p1, curr_row[self.p2_idx].as_int()) {
                            let candidate = self.make_out(&curr_row, p1v, p2v);
                            if self.last_out.as_ref() != Some(&candidate) {
                                self.sweepline = self.sweepline.max(p2v);
                                produced = Some(candidate);
                            }
                        }
                    }
                    AdjustMode::GapsOnly => {
                        // Advance over the covered region without emitting
                        // the intersection.
                        if let Some(p2v) = curr_row[self.p2_idx].as_int() {
                            self.sweepline = self.sweepline.max(p2v);
                        }
                    }
                    AdjustMode::Normalize => {}
                }
                let next = self.fetch_input(state)?;
                self.sameleft = match &next {
                    Some(n) => n.values()[..self.r_width] == curr_row.values()[..self.r_width],
                    None => false,
                };
                self.prev = Some(curr_row);
                self.curr = next;
                if let Some(out) = produced {
                    self.last_out = Some(out.clone());
                    return Ok(Some(out));
                }
            } else {
                // Fig. 10, third block: the group ended — emit the tail of
                // the r tuple's timestamp if uncovered, then reset for the
                // next group.
                let prev_te = prev_row[self.te_idx].expect_int("adjustment te")?;
                let produced = (self.sweepline < prev_te)
                    .then(|| self.make_out(&prev_row, self.sweepline, prev_te));
                self.prev = self.curr.clone();
                if let Some(c) = &self.curr {
                    self.sweepline = c[self.ts_idx].expect_int("adjustment ts")?;
                }
                self.sameleft = true;
                if let Some(out) = produced {
                    self.last_out = Some(out.clone());
                    return Ok(Some(out));
                }
            }
        }
    }
}

impl ExecNode for AdjustmentExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        self.step(state)
    }

    /// Batch path: sweep whole sorted groups per call — the input is
    /// pulled batch-wise and up to a batch of adjusted tuples is produced
    /// without returning through the parent pipeline. This is the re-entrant
    /// sweep step unrolled into a tight loop that emits into a buffer: the
    /// sweep advances identically (same branches, same emissions — the
    /// differential tests drive both), but the per-tuple `Option<Row>`
    /// clones of the re-entrant formulation are replaced by moves.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        self.batched = true;
        if self.allow_parallel && !self.started && state.threads() > 1 {
            self.try_parallel(state)?;
        }
        if let Some(it) = &mut self.outbuf {
            let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
            if chunk.is_empty() {
                return Ok(None);
            }
            return Ok(Some(RowBatch::new(self.schema.clone(), chunk)));
        }
        if !self.started {
            self.started = true;
            self.curr = self.fetch_input(state)?;
            self.prev = self.curr.clone();
            self.sameleft = true;
            if let Some(c) = &self.curr {
                self.sweepline = c[self.ts_idx].expect_int("adjustment ts")?;
            }
        }
        let mut out: Vec<Row> = Vec::with_capacity(BATCH_SIZE);
        while out.len() < BATCH_SIZE {
            if self.prev.is_none() {
                break; // prev = ω: input exhausted
            }
            if self.sameleft {
                let curr_row = self
                    .curr
                    .take()
                    .expect("sameleft group has a current tuple");
                let p1 = curr_row[self.p1_idx].as_int();
                if let Some(p1v) = p1 {
                    if self.sweepline < p1v {
                        // Emit the uncovered piece [sweepline, P1) and
                        // revisit the same tuple.
                        let o = self.make_out(&curr_row, self.sweepline, p1v);
                        self.sweepline = p1v;
                        self.last_out = Some(o.clone());
                        out.push(o);
                        self.curr = Some(curr_row);
                        continue;
                    }
                }
                let mut produced: Option<Row> = None;
                match self.mode {
                    AdjustMode::Align => {
                        if let (Some(p1v), Some(p2v)) = (p1, curr_row[self.p2_idx].as_int()) {
                            let candidate = self.make_out(&curr_row, p1v, p2v);
                            if self.last_out.as_ref() != Some(&candidate) {
                                self.sweepline = self.sweepline.max(p2v);
                                produced = Some(candidate);
                            }
                        }
                    }
                    AdjustMode::GapsOnly => {
                        if let Some(p2v) = curr_row[self.p2_idx].as_int() {
                            self.sweepline = self.sweepline.max(p2v);
                        }
                    }
                    AdjustMode::Normalize => {}
                }
                // On an input error, put the taken tuple back so the node
                // stays re-entrant (the row path clones instead of taking
                // and re-errors cleanly on the next poll).
                let next = match self.fetch_input(state) {
                    Ok(n) => n,
                    Err(e) => {
                        self.curr = Some(curr_row);
                        return Err(e);
                    }
                };
                self.sameleft = match &next {
                    Some(n) => n.values()[..self.r_width] == curr_row.values()[..self.r_width],
                    None => false,
                };
                self.prev = Some(curr_row);
                self.curr = next;
                if let Some(o) = produced {
                    self.last_out = Some(o.clone());
                    out.push(o);
                }
            } else {
                // Group ended: emit the tail of the r tuple's timestamp if
                // uncovered, then reset for the next group.
                let prev_row = self.prev.as_ref().expect("checked above");
                let prev_te = prev_row[self.te_idx].expect_int("adjustment te")?;
                let produced = (self.sweepline < prev_te)
                    .then(|| self.make_out(prev_row, self.sweepline, prev_te));
                self.prev = self.curr.clone();
                if let Some(c) = &self.curr {
                    self.sweepline = c[self.ts_idx].expect_int("adjustment ts")?;
                }
                self.sameleft = true;
                if let Some(o) = produced {
                    self.last_out = Some(o.clone());
                    out.push(o);
                }
            }
        }
        if out.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::new(self.schema.clone(), out)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::primitives::aligner::{align_ref, Theta};
    use crate::primitives::splitter::{normalize_ref, self_normalize_ref};

    fn rel(name: &str, rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::qualified(name, "v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    fn planner() -> Planner {
        Planner::default()
    }

    #[test]
    fn align_matches_reference_no_theta() {
        let r = rel("r", &[("a", 0, 10), ("b", 2, 8), ("a", 12, 15)]);
        let s = rel("s", &[("x", 1, 3), ("y", 4, 6), ("z", 5, 9), ("w", 20, 22)]);
        let fast = align_eval(&r, &s, None, &planner()).unwrap();
        let slow = align_ref(&r, &s, &Theta::True).unwrap();
        assert!(fast.same_set(&slow), "fast:\n{fast}\nslow:\n{slow}");
    }

    #[test]
    fn align_matches_reference_with_theta() {
        // θ: r.v = s.v; columns r=(v,ts,te), s=(v,ts,te) → r.v=0, s.v=3.
        let r = rel("r", &[("a", 0, 10), ("b", 0, 10)]);
        let s = rel("s", &[("a", 2, 4), ("a", 3, 6), ("b", 8, 12)]);
        let theta = col(0).eq(col(3));
        let fast = align_eval(&r, &s, Some(theta.clone()), &planner()).unwrap();
        let slow = align_ref(&r, &s, &Theta::Predicate(theta)).unwrap();
        assert!(fast.same_set(&slow), "fast:\n{fast}\nslow:\n{slow}");
    }

    #[test]
    fn align_paper_fig8_fig11_trace() {
        // Fig. 8: r1=(a,β,[1,7)), r2=(b,β,[3,9)), r3=(c,γ,[8,10));
        // s1=(1,β,[2,5)), s2=(2,β,[3,4)), s3=(3,β,[7,9));
        // θ ≡ B = D (the overlap is added by the plan itself).
        let r = TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("a", DataType::Str),
                Column::new("b", DataType::Str),
            ]),
            vec![
                (
                    vec![Value::str("a"), Value::str("beta")],
                    Interval::of(1, 7),
                ),
                (
                    vec![Value::str("b"), Value::str("beta")],
                    Interval::of(3, 9),
                ),
                (
                    vec![Value::str("c"), Value::str("gamma")],
                    Interval::of(8, 10),
                ),
            ],
        )
        .unwrap();
        let s = TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("c", DataType::Int),
                Column::new("d", DataType::Str),
            ]),
            vec![
                (vec![Value::Int(1), Value::str("beta")], Interval::of(2, 5)),
                (vec![Value::Int(2), Value::str("beta")], Interval::of(3, 4)),
                (vec![Value::Int(3), Value::str("beta")], Interval::of(7, 9)),
            ],
        )
        .unwrap();
        // concat columns: r = (a,b,ts,te) s = (c,d,ts,te) → b = 1, d = 5.
        let theta = col(1).eq(col(5));
        let fast = align_eval(&r, &s, Some(theta.clone()), &planner()).unwrap();
        // Expected (from walking Fig. 9/11):
        // r1: gap [1,2), ∩s1 [2,5), ∩s2 [3,4), tail [5,7)
        // r2: ∩s2 [3,4), ∩s1 [3,5), gap [5,7), ∩s3 [7,9)
        // r3: whole [8,10)
        let expected = TemporalRelation::from_rows(
            r.data_schema(),
            vec![
                (
                    vec![Value::str("a"), Value::str("beta")],
                    Interval::of(1, 2),
                ),
                (
                    vec![Value::str("a"), Value::str("beta")],
                    Interval::of(2, 5),
                ),
                (
                    vec![Value::str("a"), Value::str("beta")],
                    Interval::of(3, 4),
                ),
                (
                    vec![Value::str("a"), Value::str("beta")],
                    Interval::of(5, 7),
                ),
                (
                    vec![Value::str("b"), Value::str("beta")],
                    Interval::of(3, 4),
                ),
                (
                    vec![Value::str("b"), Value::str("beta")],
                    Interval::of(3, 5),
                ),
                (
                    vec![Value::str("b"), Value::str("beta")],
                    Interval::of(5, 7),
                ),
                (
                    vec![Value::str("b"), Value::str("beta")],
                    Interval::of(7, 9),
                ),
                (
                    vec![Value::str("c"), Value::str("gamma")],
                    Interval::of(8, 10),
                ),
            ],
        )
        .unwrap();
        assert!(fast.same_set(&expected), "got:\n{fast}");
        let slow = align_ref(&r, &s, &Theta::Predicate(theta)).unwrap();
        assert!(fast.same_set(&slow));
    }

    #[test]
    fn normalize_matches_reference() {
        let r = rel("r", &[("a", 0, 10), ("b", 2, 8), ("a", 12, 15)]);
        let s = rel("s", &[("a", 1, 3), ("b", 4, 6), ("a", 5, 9), ("a", 20, 22)]);
        // N_{} — every s tuple splits every r tuple.
        let fast = normalize_eval(&r, &s, &[], &planner()).unwrap();
        let slow = normalize_ref(&r, &s, &[]).unwrap();
        assert!(fast.same_set(&slow), "fast:\n{fast}\nslow:\n{slow}");
        // N_{v} — only same-letter tuples split.
        let fast = normalize_eval(&r, &s, &[(0, 0)], &planner()).unwrap();
        let slow = normalize_ref(&r, &s, &[(0, 0)]).unwrap();
        assert!(fast.same_set(&slow), "fast:\n{fast}\nslow:\n{slow}");
    }

    #[test]
    fn self_normalization_matches_paper_fig3() {
        let r = rel("r", &[("ann", 1, 8), ("joe", 2, 6), ("ann", 8, 12)]);
        let fast = normalize_eval(&r, &r, &[], &planner()).unwrap();
        let slow = self_normalize_ref(&r, &[]).unwrap();
        assert!(fast.same_set(&slow), "fast:\n{fast}\nslow:\n{slow}");
        assert_eq!(fast.len(), 5); // Fig. 3 has five result tuples
    }

    #[test]
    fn batch_path_reerrors_cleanly_after_input_error() {
        // An input that yields one tuple, then fails: both protocols must
        // surface the error on every poll (no panic on re-poll — the batch
        // path puts the taken tuple back before propagating).
        struct FailingInput {
            schema: Schema,
            emitted: bool,
        }
        impl FailingInput {
            fn row() -> Row {
                Row::new(vec![
                    Value::Int(1),
                    Value::Int(0),
                    Value::Int(10),
                    Value::Null,
                    Value::Null,
                ])
            }
        }
        impl ExecNode for FailingInput {
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn next(&mut self, _state: &ExecutionState) -> EngineResult<Option<Row>> {
                if !self.emitted {
                    self.emitted = true;
                    Ok(Some(Self::row()))
                } else {
                    Err(EngineError::Internal("input failed".into()))
                }
            }
            // Deliver the tuple as a whole batch so the failure arrives on
            // the *second* pull — mid-group, after the sweep has taken its
            // current tuple.
            fn next_batch(
                &mut self,
                _state: &ExecutionState,
            ) -> EngineResult<Option<temporal_engine::batch::RowBatch>> {
                if !self.emitted {
                    self.emitted = true;
                    Ok(Some(temporal_engine::batch::RowBatch::new(
                        self.schema.clone(),
                        vec![Self::row()],
                    )))
                } else {
                    Err(EngineError::Internal("input failed".into()))
                }
            }
        }
        let out_schema = Schema::new(vec![
            Column::new("v", DataType::Int),
            Column::new("ts", DataType::Int),
            Column::new("te", DataType::Int),
        ]);
        let mk = |out_schema: &Schema| {
            let in_schema = Schema::new(vec![
                Column::new("v", DataType::Int),
                Column::new("ts", DataType::Int),
                Column::new("te", DataType::Int),
                Column::new("__p1", DataType::Int),
                Column::new("__p2", DataType::Int),
            ]);
            AdjustmentExec::new(
                Box::new(FailingInput {
                    schema: in_schema,
                    emitted: false,
                }),
                out_schema.clone(),
                AdjustMode::Align,
            )
        };
        let mut exec = mk(&out_schema);
        let state = ExecutionState::default();
        assert!(exec.next_batch(&state).is_err());
        assert!(exec.next_batch(&state).is_err(), "re-poll must re-error");
        let mut exec = mk(&out_schema);
        assert!(exec.next(&state).is_err());
        assert!(exec.next(&state).is_err(), "row path re-poll must re-error");
    }

    #[test]
    fn parallel_sweep_is_row_identical_to_serial() {
        // Many groups with shared data values (so data-runs span several
        // r-tuples and some runs straddle naive cut points), gaps, overlaps
        // and unmatched tuples. Compare the full planned pipeline under a
        // 4-worker state against the serial planner, for every sweep mode.
        let mut r_rows: Vec<(&str, i64, i64)> = Vec::new();
        let names = ["a", "b", "c", "d", "e"];
        for i in 0..120i64 {
            let v = names[(i % 5) as usize];
            r_rows.push((v, i % 37, i % 37 + 3 + i % 7));
        }
        let mut s_rows: Vec<(&str, i64, i64)> = Vec::new();
        for i in 0..90i64 {
            let v = names[(i % 4) as usize];
            s_rows.push((v, i % 29, i % 29 + 2 + i % 5));
        }
        let r = rel("r", &r_rows);
        let s = rel("s", &s_rows);
        let theta = col(0).eq(col(3));
        let serial = Planner::default();
        let par = Planner::new(PlannerConfig {
            threads: 4,
            parallel_min_rows: 1,
            ..Default::default()
        });
        // Alignment (with and without θ).
        for theta in [None, Some(theta)] {
            let a = align_eval(&r, &s, theta.clone(), &serial).unwrap();
            let b = align_eval(&r, &s, theta, &par).unwrap();
            assert_eq!(
                a.rel().rows(),
                b.rel().rows(),
                "align must be row-identical"
            );
        }
        // Normalization (grouped and ungrouped).
        for b in [&[][..], &[(0usize, 0usize)][..]] {
            let x = normalize_eval(&r, &s, b, &serial).unwrap();
            let y = normalize_eval(&r, &s, b, &par).unwrap();
            assert_eq!(
                x.rel().rows(),
                y.rel().rows(),
                "normalize must be row-identical"
            );
        }
        // Gaps-only (anti-join primitive).
        let catalog = temporal_engine::catalog::Catalog::new();
        let gaps = |p: &Planner| {
            let plan = antijoin_gaps_plan(
                LogicalPlan::inline_scan(r.rel().clone()),
                LogicalPlan::inline_scan(s.rel().clone()),
                None,
            )
            .unwrap();
            p.run(&plan, &catalog).unwrap()
        };
        assert_eq!(gaps(&serial).rows(), gaps(&par).rows());
    }

    #[test]
    fn adjustment_handles_empty_inputs() {
        let r = rel("r", &[]);
        let s = rel("s", &[("x", 0, 5)]);
        let out = align_eval(&r, &s, None, &planner()).unwrap();
        assert!(out.is_empty());
        let out = normalize_eval(&s, &r, &[], &planner()).unwrap();
        assert!(out.same_set(&s)); // nothing to split against
    }

    #[test]
    fn alignment_cardinality_respects_lemma1() {
        let r = rel("r", &[("a", 0, 30), ("b", 5, 25), ("c", 10, 20)]);
        let s = rel(
            "s",
            &[
                ("x", 2, 4),
                ("y", 6, 9),
                ("z", 11, 14),
                ("w", 16, 23),
                ("v", 26, 28),
            ],
        );
        let out = align_eval(&r, &s, None, &planner()).unwrap();
        let (n, m) = (r.len() as i64, s.len() as i64);
        assert!((out.len() as i64) <= 2 * n * m + n, "|out| = {}", out.len());
    }

    #[test]
    fn join_method_switches_do_not_change_results() {
        let r = rel("r", &[("a", 0, 10), ("b", 3, 12), ("a", 15, 20)]);
        let s = rel("s", &[("a", 2, 6), ("b", 4, 8), ("a", 9, 18)]);
        let theta = col(0).eq(col(3));
        let reference = align_eval(
            &r,
            &s,
            Some(theta.clone()),
            &Planner::new(PlannerConfig::nestloop_only()),
        )
        .unwrap();
        for config in [PlannerConfig::all_enabled(), PlannerConfig::no_merge()] {
            let out = align_eval(&r, &s, Some(theta.clone()), &Planner::new(config)).unwrap();
            assert!(out.same_set(&reference));
        }
    }

    #[test]
    fn plan_rejects_theta_out_of_range() {
        let r = rel("r", &[("a", 0, 1)]);
        let s = rel("s", &[("b", 0, 1)]);
        let res = align_plan(
            LogicalPlan::inline_scan(r.rel().clone()),
            LogicalPlan::inline_scan(s.rel().clone()),
            Some(col(42).eq(col(0))),
        );
        assert!(res.is_err());
    }

    #[test]
    fn normalize_rejects_bad_grouping() {
        let r = rel("r", &[("a", 0, 1)]);
        let s = rel("s", &[("b", 0, 1)]);
        assert!(normalize_plan(
            LogicalPlan::inline_scan(r.rel().clone()),
            LogicalPlan::inline_scan(s.rel().clone()),
            &[(0, 7)],
        )
        .is_err());
    }
}
