//! `tsql` — an interactive shell for the temporal SQL dialect.
//!
//! ```text
//! cargo run -p temporal-sql --bin tsql [--demo] [DIR]
//! ```
//!
//! With `--demo`, the paper's running example (relations `r` and `p`,
//! Fig. 1a, months numbered from 2012/1 = 0) and a small `incumben`-style
//! table are preloaded. With a `DIR` argument the shell opens (or
//! creates) the **persisted database** rooted at that directory: its
//! manifest's tables attach as heap-file-backed catalog entries and DDL
//! writes through to disk. Statements end with `;`. Meta commands:
//!
//! * `.tables` (or `\d`) — list tables,
//! * `.schema <t>` — show a table's columns,
//! * `.open <dir>` — attach the persisted database in `<dir>`,
//! * `.checkpoint` — flush everything and truncate the WAL,
//! * `\q` — quit.
//!
//! Example session:
//!
//! ```text
//! tsql> .open /tmp/mydb
//! tsql> CREATE TABLE m (name str, ts int, te int) PERSISTED;
//! tsql> COPY m FROM 'rows.csv';
//! tsql> SELECT * FROM (m r1 NORMALIZE m r2 USING()) x;
//! ```

use std::io::{BufRead, Write};

use temporal_core::prelude::*;
use temporal_engine::prelude::*;
use temporal_sql::{Session, SqlOutput};

fn demo_session() -> Session {
    use temporal_core::interval::month::ym;
    let mut session = Session::new();
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )
    .expect("demo fixture");
    let p = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(30), Value::Int(8), Value::Int(12)],
                Interval::of(ym(2012, 1), ym(2013, 1)),
            ),
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
        ],
    )
    .expect("demo fixture");
    session.register_temporal("r", &r).expect("register r");
    session.register_temporal("p", &p).expect("register p");
    session
}

/// Handle a `.`/`\` meta command; returns `false` for `\q`.
fn meta_command(session: &mut Session, line: &str) -> bool {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    match cmd {
        "\\q" | ".quit" | ".exit" => return false,
        ".tables" | "\\d" => {
            let tables = session.database().list_tables();
            if tables.is_empty() {
                println!("(no tables — CREATE TABLE, .open <dir>, or start with --demo)");
            } else {
                for t in tables {
                    println!("{t}");
                }
            }
        }
        ".schema" => match parts.next() {
            None => println!("usage: .schema <table>"),
            Some(name) => {
                match session
                    .database()
                    .read(|catalog, _| catalog.schema_of(name))
                {
                    Ok(schema) => println!("{name} {schema}"),
                    Err(e) => println!("error: {e}"),
                }
            }
        },
        ".open" => match parts.next() {
            None => println!("usage: .open <dir>"),
            Some(dir) => match Database::open(dir) {
                Ok(db) => {
                    let n = db.list_tables().len();
                    *session = Session::with_database(db);
                    println!("opened {dir} ({n} tables)");
                }
                Err(e) => println!("error: {e}"),
            },
        },
        ".checkpoint" => match session.database().checkpoint() {
            Ok(()) => println!("checkpointed"),
            Err(e) => println!("error: {e}"),
        },
        other => println!("unknown meta command: {other}"),
    }
    true
}

fn main() {
    let mut demo = false;
    let mut dir: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--demo" => demo = true,
            other if !other.starts_with('-') => dir = Some(other.to_string()),
            other => {
                eprintln!("unknown flag: {other} (usage: tsql [--demo] [DIR])");
                std::process::exit(2);
            }
        }
    }
    let mut session = if let Some(dir) = dir {
        match Database::open(&dir) {
            Ok(db) => {
                eprintln!(
                    "opened persisted database {dir} ({} tables)",
                    db.list_tables().len()
                );
                Session::with_database(db)
            }
            Err(e) => {
                eprintln!("error opening {dir}: {e}");
                std::process::exit(1);
            }
        }
    } else if demo {
        eprintln!("loaded demo tables: r (reservations), p (prices) — paper Fig. 1a");
        demo_session()
    } else {
        Session::new()
    };

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let interactive = true;
    if interactive {
        eprint!("tsql> ");
    }
    std::io::stderr().flush().ok();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() {
            if trimmed.is_empty() {
                eprint!("tsql> ");
                std::io::stderr().flush().ok();
                continue;
            }
            if trimmed.starts_with('.') || trimmed.starts_with('\\') {
                if !meta_command(&mut session, trimmed) {
                    break;
                }
                eprint!("tsql> ");
                std::io::stderr().flush().ok();
                continue;
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            eprint!("  ... ");
            std::io::stderr().flush().ok();
            continue;
        }
        let stmt = std::mem::take(&mut buffer);
        match session.execute(stmt.trim().trim_end_matches(';')) {
            Ok(SqlOutput::Rows(rel)) => println!("{}", rel.to_table()),
            Ok(SqlOutput::Explain(plan)) => println!("{plan}"),
            Ok(SqlOutput::Ok) => println!("OK"),
            Ok(SqlOutput::Affected(n)) => println!("COPY {n}"),
            Err(e) => println!("error: {e}"),
        }
        eprint!("tsql> ");
        std::io::stderr().flush().ok();
    }
}
