//! `tsql` — an interactive shell for the temporal SQL dialect, plus the
//! server and client modes for concurrent multi-client serving.
//!
//! ```text
//! cargo run -p temporal-server --bin tsql [--demo] [DIR]
//! cargo run -p temporal-server --bin tsql -- --serve DIR [--listen ADDR]
//! cargo run -p temporal-server --bin tsql -- --connect ADDR
//! ```
//!
//! With `--demo`, the paper's running example (relations `r` and `p`,
//! Fig. 1a, months numbered from 2012/1 = 0) and a small `incumben`-style
//! table are preloaded. With a `DIR` argument the shell opens (or
//! creates) the **persisted database** rooted at that directory: its
//! manifest's tables attach as heap-file-backed catalog entries and DDL
//! writes through to disk.
//!
//! `--serve DIR` opens the persisted database and accepts concurrent
//! clients on `ADDR` (default `127.0.0.1:5433`; an address containing
//! `/` binds a Unix socket). Each connection gets its own session:
//! planner `SET`s stay per-connection, readers run on heap snapshots,
//! and concurrent commits share WAL fsyncs (group commit). `--connect
//! ADDR` is the matching line-mode client.
//!
//! Statements end with `;`. Meta commands (local shell only):
//!
//! * `.tables` (or `\d`) — list tables,
//! * `.schema <t>` — show a table's columns,
//! * `.open <dir>` — attach the persisted database in `<dir>`,
//! * `.checkpoint` — flush everything and truncate the WAL,
//! * `.stats` — dump the metrics registry (also works over `--connect`:
//!   the server answers it with a name/value result),
//! * `.bufstats` — aggregated buffer-pool counters and hit rate,
//! * `.timer on|off` — print wall-time plus pool/WAL deltas after each
//!   statement,
//! * `.trace <file>` — dump recorded spans (`SET trace = on` records
//!   them) as chrome-trace JSON,
//! * `\q` — quit.
//!
//! Example session:
//!
//! ```text
//! tsql> .open /tmp/mydb
//! tsql> CREATE TABLE m (name str, ts int, te int) PERSISTED;
//! tsql> COPY m FROM 'rows.csv';
//! tsql> SELECT * FROM (m r1 NORMALIZE m r2 USING()) x;
//! ```

use std::io::{BufRead, Write};

use std::time::Instant;
use temporal_core::prelude::*;
use temporal_engine::prelude::*;

use temporal_server::{stats_relation, Client, Server};
use temporal_sql::{Session, SqlOutput};

/// Default TCP listen address for `--serve`.
const DEFAULT_LISTEN: &str = "127.0.0.1:5433";

fn demo_session() -> Session {
    use temporal_core::interval::month::ym;
    let mut session = Session::new();
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )
    .expect("demo fixture");
    let p = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(30), Value::Int(8), Value::Int(12)],
                Interval::of(ym(2012, 1), ym(2013, 1)),
            ),
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
        ],
    )
    .expect("demo fixture");
    session.register_temporal("r", &r).expect("register r");
    session.register_temporal("p", &p).expect("register p");
    session
}

/// Handle a `.`/`\` meta command; returns `false` for `\q`.
fn meta_command(session: &mut Session, timer: &mut bool, line: &str) -> bool {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    match cmd {
        "\\q" | ".quit" | ".exit" => return false,
        ".stats" => {
            println!("{}", stats_relation(session.database()).to_table());
        }
        ".bufstats" => match session.database().pool_stats() {
            None => println!("(in-memory database — no buffer pools; .open <dir> first)"),
            Some(p) => {
                println!("fetches    {}", p.fetches);
                println!("io_reads   {}", p.io_reads);
                println!("io_writes  {}", p.io_writes);
                println!("io_syncs   {}", p.io_syncs);
                println!("evictions  {}", p.evictions);
                println!("capacity   {}", p.capacity);
                println!("hit_rate   {:.3}", p.hit_rate());
            }
        },
        ".timer" => match parts.next() {
            Some("on") => {
                *timer = true;
                println!("timer on");
            }
            Some("off") => {
                *timer = false;
                println!("timer off");
            }
            _ => println!("usage: .timer on|off"),
        },
        ".trace" => match parts.next() {
            None => println!("usage: .trace <file>  (spans record while `SET trace = on`)"),
            Some(path) => {
                let db = session.database();
                let spans = db.tracer().len();
                let dropped = db.tracer().dropped();
                match std::fs::write(path, db.tracer().chrome_trace_json()) {
                    Ok(()) => println!(
                        "wrote {spans} spans to {path} ({dropped} dropped); load it in a \
                         chrome-trace viewer"
                    ),
                    Err(e) => println!("error: write {path}: {e}"),
                }
            }
        },
        ".tables" | "\\d" => {
            let tables = session.database().list_tables();
            if tables.is_empty() {
                println!("(no tables — CREATE TABLE, .open <dir>, or start with --demo)");
            } else {
                for t in tables {
                    println!("{t}");
                }
            }
        }
        ".schema" => match parts.next() {
            None => println!("usage: .schema <table>"),
            Some(name) => {
                match session
                    .database()
                    .read(|catalog, _| catalog.schema_of(name))
                {
                    Ok(schema) => println!("{name} {schema}"),
                    Err(e) => println!("error: {e}"),
                }
            }
        },
        ".open" => match parts.next() {
            None => println!("usage: .open <dir>"),
            Some(dir) => match Database::open(dir) {
                Ok(db) => {
                    let n = db.list_tables().len();
                    *session = Session::with_database(db);
                    println!("opened {dir} ({n} tables)");
                }
                Err(e) => println!("error: {e}"),
            },
        },
        ".checkpoint" => match session.database().checkpoint() {
            Ok(()) => println!("checkpointed"),
            Err(e) => println!("error: {e}"),
        },
        other => println!("unknown meta command: {other}"),
    }
    true
}

/// `tsql --serve DIR [--listen ADDR]`: open the persisted database and
/// accept connections until killed.
fn serve(dir: &str, listen: &str) -> ! {
    let db = match Database::open(dir) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error opening {dir}: {e}");
            std::process::exit(1);
        }
    };
    let tables = db.list_tables().len();
    let server = match Server::bind(db, listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error binding {listen}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "serving {dir} ({tables} tables) on {}; one session per connection",
        server.addr()
    );
    if let Err(e) = server.serve() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `tsql --connect ADDR`: line-mode remote REPL.
fn connect(addr: &str) -> ! {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error connecting to {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("connected to {addr}; statements end with ';', \\q quits");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    eprint!("tsql> ");
    std::io::stderr().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() {
            if trimmed.is_empty() {
                eprint!("tsql> ");
                std::io::stderr().flush().ok();
                continue;
            }
            if trimmed == "\\q" {
                let _ = client.quit();
                break;
            }
            // Dot commands (`.stats`, …) go to the server as-is, no `;`.
            if trimmed.starts_with('.') {
                match client.execute(trimmed) {
                    Ok(resp) => println!("{}", resp.render()),
                    Err(e) => {
                        eprintln!("connection error: {e}");
                        std::process::exit(1);
                    }
                }
                eprint!("tsql> ");
                std::io::stderr().flush().ok();
                continue;
            }
        }
        // Multi-line entry folds onto one wire line (space-joined).
        if !buffer.is_empty() {
            buffer.push(' ');
        }
        buffer.push_str(trimmed);
        if !trimmed.ends_with(';') {
            eprint!("  ... ");
            std::io::stderr().flush().ok();
            continue;
        }
        let stmt = std::mem::take(&mut buffer);
        match client.execute(stmt.trim_end_matches(';')) {
            Ok(resp) => println!("{}", resp.render()),
            Err(e) => {
                eprintln!("connection error: {e}");
                std::process::exit(1);
            }
        }
        eprint!("tsql> ");
        std::io::stderr().flush().ok();
    }
    std::process::exit(0);
}

fn usage() -> ! {
    eprintln!(
        "usage: tsql [--demo] [DIR]\n       tsql --serve DIR [--listen ADDR]\n       tsql --connect ADDR"
    );
    std::process::exit(2);
}

fn main() {
    let mut demo = false;
    let mut dir: Option<String> = None;
    let mut serve_dir: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut connect_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--demo" => demo = true,
            "--serve" => match args.next() {
                Some(d) => serve_dir = Some(d),
                None => usage(),
            },
            "--listen" => match args.next() {
                Some(a) => listen = Some(a),
                None => usage(),
            },
            "--connect" => match args.next() {
                Some(a) => connect_addr = Some(a),
                None => usage(),
            },
            other if !other.starts_with('-') => dir = Some(other.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if let Some(addr) = connect_addr {
        connect(&addr);
    }
    if let Some(dir) = serve_dir {
        serve(&dir, listen.as_deref().unwrap_or(DEFAULT_LISTEN));
    }

    let mut session = if let Some(dir) = dir {
        match Database::open(&dir) {
            Ok(db) => {
                eprintln!(
                    "opened persisted database {dir} ({} tables)",
                    db.list_tables().len()
                );
                Session::with_database(db)
            }
            Err(e) => {
                eprintln!("error opening {dir}: {e}");
                std::process::exit(1);
            }
        }
    } else if demo {
        eprintln!("loaded demo tables: r (reservations), p (prices) — paper Fig. 1a");
        demo_session()
    } else {
        Session::new()
    };

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut timer = false;
    eprint!("tsql> ");
    std::io::stderr().flush().ok();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() {
            if trimmed.is_empty() {
                eprint!("tsql> ");
                std::io::stderr().flush().ok();
                continue;
            }
            if trimmed.starts_with('.') || trimmed.starts_with('\\') {
                if !meta_command(&mut session, &mut timer, trimmed) {
                    break;
                }
                eprint!("tsql> ");
                std::io::stderr().flush().ok();
                continue;
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            eprint!("  ... ");
            std::io::stderr().flush().ok();
            continue;
        }
        let stmt = std::mem::take(&mut buffer);
        let before = timer.then(|| {
            let db = session.database();
            (Instant::now(), db.pool_stats(), db.wal_stats())
        });
        match session.execute(stmt.trim().trim_end_matches(';')) {
            Ok(SqlOutput::Rows(rel)) => println!("{}", rel.to_table()),
            Ok(SqlOutput::Explain(plan)) => println!("{plan}"),
            Ok(SqlOutput::Ok) => println!("OK"),
            Ok(SqlOutput::Affected(n)) => println!("AFFECTED {n}"),
            Err(e) => println!("error: {e}"),
        }
        if let Some((t0, pool0, wal0)) = before {
            let db = session.database();
            let mut report = format!("Time: {:.3} ms", t0.elapsed().as_secs_f64() * 1e3);
            if let (Some(a), Some(b)) = (pool0, db.pool_stats()) {
                report.push_str(&format!(
                    "  pool: +{} fetches +{} reads",
                    b.fetches.saturating_sub(a.fetches),
                    b.io_reads.saturating_sub(a.io_reads),
                ));
            }
            if let (Some(a), Some(b)) = (wal0, db.wal_stats()) {
                report.push_str(&format!(
                    "  wal: +{} commits +{} syncs",
                    b.commits.saturating_sub(a.commits),
                    b.syncs.saturating_sub(a.syncs),
                ));
            }
            eprintln!("{report}");
        }
        eprint!("tsql> ");
        std::io::stderr().flush().ok();
    }
}
