//! Composability: the temporal algebra is *closed* — every reduced
//! operator emits a valid duplicate-free temporal relation that can feed
//! the next temporal operator, and snapshot reducibility composes
//! (the snapshot of a pipeline equals the nontemporal pipeline on
//! snapshots).

mod common;

use common::{paper_p, paper_r, random_trel};
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::reference::snapshot_eval;
use temporal_alignment::core::semantics::{critical_points, TemporalOp};
use temporal_alignment::engine::prelude::*;

/// Snapshot of a composed pipeline = composition of nontemporal snapshots.
fn check_pipeline_snapshots(
    stages: &[TemporalOp],
    inputs: &[&TemporalRelation],
    result: &TemporalRelation,
) {
    // Evaluate the pipeline per snapshot: each stage's snapshot result
    // feeds the next stage (binary stages pair with the next input).
    let mut rels: Vec<&TemporalRelation> = inputs.to_vec();
    rels.push(result);
    for t in critical_points(&rels) {
        // stage 0 consumes inputs[0] (and inputs[1] if binary), later
        // stages consume the running result plus the next input.
        let mut arg_idx = 0usize;
        let mut current: Option<TemporalRelation> = None;
        for op in stages {
            let args_owned: Vec<TemporalRelation>;
            let args: Vec<&TemporalRelation> = match (&current, op.arity()) {
                (None, 1) => {
                    arg_idx += 1;
                    vec![inputs[arg_idx - 1]]
                }
                (None, 2) => {
                    arg_idx += 2;
                    vec![inputs[arg_idx - 2], inputs[arg_idx - 1]]
                }
                (Some(c), 1) => {
                    args_owned = vec![c.clone()];
                    args_owned.iter().collect()
                }
                (Some(c), 2) => {
                    arg_idx += 1;
                    args_owned = vec![c.clone()];
                    let mut v: Vec<&TemporalRelation> = args_owned.iter().collect();
                    v.push(inputs[arg_idx - 1]);
                    v
                }
                _ => unreachable!(),
            };
            // Evaluate nontemporal op at time t over the *temporal* args:
            // snapshot_eval handles the timeslice internally, so feed it
            // temporal relations and rebuild a "point relation" whose rows
            // live exactly at t (interval [t, t+1)).
            let rows = snapshot_eval(op, &args, t).expect("snapshot eval");
            let data_schema = op.result_data_schema(&args).expect("schema");
            let point_rel = TemporalRelation::from_rows(
                data_schema,
                rows.into_iter()
                    .map(|r| (r.to_vec(), Interval::of(t, t + 1)))
                    .collect(),
            )
            .expect("point relation");
            current = Some(point_rel);
        }
        let expected = current.expect("nonempty pipeline").timeslice(t);
        let actual = result.timeslice(t);
        assert!(
            actual.same_set(&expected),
            "pipeline snapshot mismatch at t={t}:\nactual:\n{actual}\nexpected:\n{expected}"
        );
    }
}

#[test]
fn join_then_aggregate() {
    // headcount of matched reservation-price pairs over time:
    // ϑ_count(R ⋈ᵀ P)
    let (r, p) = (paper_r(), paper_p());
    let alg = TemporalAlgebra::default();
    let join_op = TemporalOp::Join { theta: None };
    let joined = join_op.evaluate(&alg, &[&r, &p]).unwrap();
    assert!(joined.is_duplicate_free());
    let agg_op = TemporalOp::Aggregation {
        group: vec![],
        aggs: vec![(AggCall::count_star(), "cnt".to_string())],
    };
    let out = agg_op.evaluate(&alg, &[&joined]).unwrap();
    assert!(out.is_duplicate_free());
    check_pipeline_snapshots(&[join_op, agg_op], &[&r, &p], &out);
}

#[test]
fn difference_then_projection() {
    let r = random_trel(61, 10, 3, 20);
    let s = random_trel(62, 10, 3, 20);
    let alg = TemporalAlgebra::default();
    let diff_op = TemporalOp::Difference;
    let diffed = diff_op.evaluate(&alg, &[&r, &s]).unwrap();
    assert!(diffed.is_duplicate_free());
    let proj_op = TemporalOp::Projection { attrs: vec![0] };
    let out = proj_op.evaluate(&alg, &[&diffed]).unwrap();
    assert!(out.is_duplicate_free());
    check_pipeline_snapshots(&[diff_op, proj_op], &[&r, &s], &out);
}

#[test]
fn join_of_join_results() {
    // (r ⋈ᵀ s) ⋈ᵀ u — three-way temporal join via two reductions.
    let r = random_trel(71, 8, 2, 16);
    let s = random_trel(72, 8, 2, 16);
    let u = random_trel(73, 8, 2, 16);
    let alg = TemporalAlgebra::default();
    let j1 = TemporalOp::Join { theta: None };
    let rs = j1.evaluate(&alg, &[&r, &s]).unwrap();
    assert!(rs.is_duplicate_free());
    let j2 = TemporalOp::Join { theta: None };
    let out = j2.evaluate(&alg, &[&rs, &u]).unwrap();
    assert!(out.is_duplicate_free());
    check_pipeline_snapshots(&[j1, j2], &[&r, &s, &u], &out);
}

#[test]
fn union_then_difference_then_aggregate() {
    let a = random_trel(81, 8, 2, 14);
    let b = random_trel(82, 8, 2, 14);
    let c = random_trel(83, 8, 2, 14);
    let alg = TemporalAlgebra::default();
    let u_op = TemporalOp::Union;
    let ab = u_op.evaluate(&alg, &[&a, &b]).unwrap();
    let d_op = TemporalOp::Difference;
    let abc = d_op.evaluate(&alg, &[&ab, &c]).unwrap();
    assert!(abc.is_duplicate_free());
    let agg_op = TemporalOp::Aggregation {
        group: vec![0],
        aggs: vec![(AggCall::count_star(), "cnt".to_string())],
    };
    let out = agg_op.evaluate(&alg, &[&abc]).unwrap();
    check_pipeline_snapshots(&[u_op, d_op, agg_op], &[&a, &b, &c], &out);
}

#[test]
fn outer_join_feeds_selection_and_antijoin() {
    let r = random_trel(91, 8, 2, 14);
    let s = random_trel(92, 8, 2, 14);
    let alg = TemporalAlgebra::default();
    let loj = TemporalOp::LeftOuterJoin { theta: None };
    let joined = loj.evaluate(&alg, &[&r, &s]).unwrap();
    // keep only the ω-padded rows (negative part): s-side is NULL
    let sel = TemporalOp::Selection {
        predicate: col(1).is_null(),
    };
    let negative = sel.evaluate(&alg, &[&joined]).unwrap();
    assert!(negative.is_duplicate_free());
    check_pipeline_snapshots(&[loj, sel], &[&r, &s], &negative);

    // The ω rows must exactly be the anti join's result (projected).
    let anti = TemporalOp::AntiJoin { theta: None };
    let anti_out = anti.evaluate(&alg, &[&r, &s]).unwrap();
    let projected = negative.project_data(&[0]).unwrap();
    assert!(
        projected.same_set(&anti_out),
        "ω rows:\n{projected}\nanti join:\n{anti_out}"
    );
}
