//! Volcano-style pipelined executor.
//!
//! Every physical operator implements [`ExecNode`]: `next()` returns one row
//! at a time until `None`. This mirrors the PostgreSQL executor the paper
//! extends — their `ExecAdjustment` (Fig. 10) "is integrated into the
//! pipelining architecture of PostgreSQL and on each invocation either a
//! single result tuple is returned, or ω". The temporal crate's adjustment
//! node implements this same trait.

mod aggregate;
mod distinct;
mod filter;
mod hash_join;
mod interval_join;
mod limit;
mod merge_join;
mod nl_join;
mod project;
mod scan;
mod setops;
mod sort;
mod values;

pub use aggregate::{aggregate_rows, HashAggregateExec};
pub use distinct::DistinctExec;
pub use filter::FilterExec;
pub use hash_join::HashJoinExec;
pub use interval_join::IntervalJoinExec;
pub use limit::LimitExec;
pub use merge_join::MergeJoinExec;
pub use nl_join::NestedLoopJoinExec;
pub use project::ProjectExec;
pub use scan::SeqScanExec;
pub use setops::HashSetOpExec;
pub use sort::{sort_rows, SortExec};
pub use values::ValuesExec;

use crate::error::EngineResult;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Row;

/// A pipelined executor node.
pub trait ExecNode {
    /// The output schema.
    fn schema(&self) -> &Schema;

    /// Produce the next output row, or `None` when exhausted.
    fn next(&mut self) -> EngineResult<Option<Row>>;
}

/// Owned, type-erased executor node.
pub type BoxedExec = Box<dyn ExecNode>;

/// Drain a node into a materialized [`Relation`].
pub fn collect(mut node: BoxedExec) -> EngineResult<Relation> {
    let schema = node.schema().clone();
    let mut rows = Vec::new();
    while let Some(row) = node.next()? {
        rows.push(row);
    }
    Relation::new(schema, rows)
}

/// Drain a node into a row vector (schema discarded).
pub fn collect_rows(node: &mut dyn ExecNode) -> EngineResult<Vec<Row>> {
    let mut rows = Vec::new();
    while let Some(row) = node.next()? {
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    /// Build a one-column Int relation for executor tests.
    pub fn int_rel(name: &str, vals: &[i64]) -> Relation {
        Relation::from_values(
            Schema::new(vec![Column::new(name, DataType::Int)]),
            vals.iter().map(|&v| vec![Value::Int(v)]).collect(),
        )
        .unwrap()
    }

    /// Build a two-column (Int, Int) relation.
    pub fn int2_rel(names: (&str, &str), vals: &[(i64, i64)]) -> Relation {
        Relation::from_values(
            Schema::new(vec![
                Column::new(names.0, DataType::Int),
                Column::new(names.1, DataType::Int),
            ]),
            vals.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
        .unwrap()
    }

    pub fn rows_of(rel: &Relation) -> Vec<Vec<Value>> {
        rel.rows().iter().map(|r| r.to_vec()).collect()
    }
}
