//! EXPLAIN must surface the parallel execution shape: under `SET threads
//! = N` the session prints the effective worker count and an `Exchange`
//! line above every scan pipeline that execution would partition, while a
//! serial session prints the classic plan unchanged. The exact rendering
//! is pinned by a golden file (`tests/golden/explain_parallel.txt`);
//! refresh it with `UPDATE_GOLDENS=1 cargo test --test explain_parallel`.

mod common;

use common::rel1;
use temporal_alignment::sql::Session;

/// 600 deterministic rows: big enough to clear the default
/// `parallel_min_rows` gate, duplicate-free by construction.
fn fixture() -> temporal_alignment::core::trel::TemporalRelation {
    let rows: Vec<(i64, i64, i64)> = (0..600).map(|i| (i % 7, i, i + 1)).collect();
    rel1("r", &rows)
}

#[test]
fn explain_shows_exchange_under_parallel_session() {
    let mut session = Session::new();
    session.register_temporal("r", &fixture()).unwrap();
    let query = "SELECT * FROM r WHERE k < 3";

    session.execute("SET threads = 1").unwrap();
    let serial = session.explain(query).unwrap();
    session.execute("SET threads = 4").unwrap();
    let parallel = session.explain(query).unwrap();

    assert!(
        !serial.contains("Exchange") && !serial.contains("Parallelism"),
        "serial EXPLAIN must not show parallel operators:\n{serial}"
    );
    assert!(
        parallel.starts_with("Parallelism: threads=4"),
        "parallel EXPLAIN must lead with the worker count:\n{parallel}"
    );
    assert!(
        parallel.contains("Exchange (4 partitions over 600 units"),
        "parallel EXPLAIN must show the partitioned scan pipeline:\n{parallel}"
    );

    let rendered = format!(
        "-- EXPLAIN {query} (threads = 1)\n{serial}\n-- EXPLAIN {query} (threads = 4)\n{parallel}"
    );
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("explain_parallel.txt");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDENS=1 cargo test --test explain_parallel",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "EXPLAIN output drifted from the golden file; \
         run UPDATE_GOLDENS=1 cargo test --test explain_parallel if intentional"
    );
}

#[test]
fn set_threads_changes_results_not_at_all() {
    // The same query through a serial and a 4-worker session must return
    // identical rows in identical order.
    let mut session = Session::new();
    session.register_temporal("r", &fixture()).unwrap();
    let query = "SELECT * FROM r WHERE k < 3";

    session.execute("SET threads = 1").unwrap();
    let serial = session.query(query).unwrap();
    session.execute("SET threads = 4").unwrap();
    let parallel = session.query(query).unwrap();
    assert_eq!(serial.rows(), parallel.rows());
}

#[test]
fn set_threads_rejects_nonsense() {
    let mut session = Session::new();
    assert!(session.execute("SET threads = 4").is_ok());
    assert!(session.execute("SET nonsense_guc = 4").is_err());
}
