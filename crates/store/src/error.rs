//! Storage-layer error type.

use std::fmt;

/// Errors produced by the storage layer (paging, buffering, manifest I/O).
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes violated the page or manifest format.
    Corrupt(String),
    /// A record cannot fit in a page, or the buffer pool has no evictable
    /// frame (every frame pinned).
    Capacity(String),
    /// The manifest references a file that does not exist on disk — the
    /// database directory is incomplete (partial copy, deleted heap).
    Missing(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage io error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StoreError::Capacity(m) => write!(f, "storage capacity: {m}"),
            StoreError::Missing(m) => write!(f, "missing storage file: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias used throughout the storage layer.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_kinds() {
        assert!(StoreError::Corrupt("bad magic".into())
            .to_string()
            .contains("corrupt"));
        let io: StoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }
}
