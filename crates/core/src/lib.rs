//! # temporal-core
//!
//! The primary contribution of *Temporal Alignment* (Dignös, Böhlen,
//! Gamper; SIGMOD 2012): native relational-algebra support for the
//! **sequenced semantics** over interval-timestamped relations, via two
//! adjustment primitives and a set of reduction rules.
//!
//! ## The three properties of sequenced semantics (Sec. 3)
//!
//! * **Snapshot reducibility** (Def. 1): each snapshot of a temporal
//!   result equals the nontemporal operator on the argument snapshots.
//! * **Extended snapshot reducibility** (Def. 4): predicates/functions may
//!   reference the original interval timestamps, enabled by *timestamp
//!   propagation* ([`primitives::extend`]).
//! * **Change preservation** (Def. 7): result intervals are maximal
//!   intervals of constant *lineage* ([`mod@semantics::lineage`]).
//!
//! ## The two primitives (Sec. 4)
//!
//! * the **temporal splitter** / normalization `N_B(r; s)`
//!   ([`primitives::splitter`]) for group-based operators {π, ϑ, ∪, −, ∩};
//! * the **temporal aligner** / alignment `r Φ_θ s`
//!   ([`primitives::aligner`]) for tuple-based operators
//!   {σ, ×, ⋈, ⟕, ⟖, ⟗, ▷}.
//!
//! Both are executed by the pipelined plane sweep of Fig. 10
//! ([`primitives::adjustment`]), fed by an ordinary left outer join that
//! the engine's optimizer is free to execute with nested-loop, hash or
//! merge strategies.
//!
//! ## Reduction rules (Sec. 5, Table 2)
//!
//! [`algebra::TemporalAlgebra`] exposes every operator of the sequenced
//! temporal algebra, each implemented *only* through its reduction to
//! nontemporal operators plus adjustment, timestamp-equality and the
//! absorb operator α ([`primitives::absorb`]).
//!
//! ## The front door (frames)
//!
//! [`algebra::Database`] owns the shared catalog + planner, and
//! [`algebra::TemporalFrame`] is the lazy, name-based builder over the
//! plan-first pipeline: `db.table("r")?.filter(col("team").eq(lit("db")))
//! .collect()?`. The SQL surface (`temporal-sql`) wraps the same
//! `Database`, so both surfaces see one catalog and one planner.
//!
//! ## Verification layer
//!
//! [`semantics`] makes the paper's formal machinery executable (timeslice,
//! snapshot-reducibility checkers, lineage sets, change preservation,
//! Table 1 operator properties), and [`mod@reference`] provides a point-wise
//! evaluation oracle used to test Theorem 1 on arbitrary inputs.
//!
//! ## Example
//!
//! ```
//! use temporal_core::prelude::*;
//! use temporal_engine::prelude::*;
//!
//! // R (reservations) and P (prices) from the paper's running example.
//! let r = TemporalRelation::from_rows(
//!     Schema::new(vec![Column::new("n", DataType::Str)]),
//!     vec![(vec![Value::str("ann")], Interval::of(0, 7))],
//! )
//! .unwrap();
//! let p = TemporalRelation::from_rows(
//!     Schema::new(vec![Column::new("a", DataType::Int)]),
//!     vec![(vec![Value::Int(50)], Interval::of(0, 5))],
//! )
//! .unwrap();
//!
//! let alg = TemporalAlgebra::default();
//! let q = alg.left_outer_join(&r, &p, None).unwrap();
//! // ann joins the price over [0,5) and stands alone over [5,7).
//! assert_eq!(q.len(), 2);
//! ```

pub mod algebra;
pub mod allen;
pub mod coalesce;
pub mod date;
pub mod error;
pub mod interval;
pub mod primitives;
pub mod reference;
pub mod semantics;
pub mod trel;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::algebra::{
        Database, SessionGuard, TemporalAlgebra, TemporalFrame, TemporalPlan,
    };
    pub use crate::allen::{relate, AllenRelation};
    pub use crate::coalesce::{coalesce, snapshot_equivalent};
    pub use crate::date::{date_interval, fmt_day, Date};
    pub use crate::error::{TemporalError, TemporalResult};
    pub use crate::interval::{month, Interval, TimePoint};
    pub use crate::primitives::absorb::{absorb, absorb_ref, AbsorbNode};
    pub use crate::primitives::adjustment::{
        align_eval, align_plan, antijoin_gaps_plan, normalize_eval, normalize_plan, AdjustMode,
    };
    pub use crate::primitives::aligner::{align, align_ref, Theta};
    pub use crate::primitives::extend::{extend, extend_named, extend_plan};
    pub use crate::primitives::splitter::{normalize_ref, self_normalize_ref, split};
    pub use crate::trel::{temporal_schema, TemporalRelation, TE, TS};
    pub use temporal_engine::storage::{PoolStats, WalStats};
}
