//! The SQL surface of Sec. 6.2/6.3: `ALIGN`, `NORMALIZE … USING()`,
//! `ABSORB`, the `DUR` UDF, planner switches (`SET enable_mergejoin = off`)
//! and `EXPLAIN` — the workflow of the paper's Fig. 13 experiment.
//!
//! Run with: `cargo run --example sql_interface`

use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_alignment::sql::Session;
use temporal_core::interval::month::ym;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();

    // The running example's relations.
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )?;
    let p = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(30), Value::Int(8), Value::Int(12)],
                Interval::of(ym(2012, 1), ym(2013, 1)),
            ),
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
        ],
    )?;
    session.register_temporal("r", &r)?;
    session.register_temporal("p", &p)?;

    // ---- Q1 via the paper's SQL (Sec. 6.2) --------------------------------
    let q1 = "WITH r AS (SELECT Ts Us, Te Ue, * FROM r) \
              SELECT ABSORB n, a, min, max, x.Ts, x.Te \
              FROM (r ALIGN p ON DUR(Us,Ue) BETWEEN Min AND Max) x \
              LEFT OUTER JOIN \
              (p ALIGN r ON DUR(Us,Ue) BETWEEN Min AND Max) y \
              ON DUR(Us,Ue) BETWEEN Min AND Max AND x.Ts = y.Ts AND x.Te = y.Te";
    println!("-- Q1 (temporal left outer join with DUR predicate):");
    println!("{}", session.query(q1)?.sorted().to_table());

    // ---- Q2 via the paper's SQL (Sec. 6.3) --------------------------------
    let q2 = "WITH r AS (SELECT Ts Us, Te Ue, * FROM r) \
              SELECT AVG(DUR(Us,Ue)) avg_dur, Ts, Te \
              FROM (r r1 NORMALIZE r r2 USING()) x \
              GROUP BY Ts, Te";
    println!("-- Q2 (temporal aggregation):");
    println!("{}", session.query(q2)?.sorted().to_table());

    // ---- EXPLAIN and the join-method switches -----------------------------
    let probe = "SELECT * FROM (r r1 NORMALIZE r r2 USING(n)) x";
    println!("-- EXPLAIN with all join methods enabled:");
    println!("{}", session.explain(probe)?);

    session.execute("SET enable_mergejoin = off")?;
    session.execute("SET enable_hashjoin = off")?;
    println!("-- EXPLAIN with merge and hash joins disabled (nested loop only):");
    println!("{}", session.explain(probe)?);
    session.execute("SET enable_mergejoin = on")?;
    session.execute("SET enable_hashjoin = on")?;

    // ---- NOT EXISTS (the sql baseline's building block) -------------------
    let gaps = "SELECT n, ts, te FROM r \
                WHERE NOT EXISTS (SELECT * FROM p WHERE p.a = 30 AND p.ts < r.te AND r.ts < p.te)";
    println!("-- reservations with no overlapping permanent-price period:");
    println!("{}", session.query(gaps)?.to_table());

    Ok(())
}
